//! A real multi-process network fabric: one OS process per occupied node,
//! Unix-domain sockets (or TCP) between processes, shared memory within.
//!
//! This is the third [`Fabric`] implementation, and the first where the
//! paper's leader/slave split maps onto genuine process and wire
//! boundaries: images colocated on one "node" live in one process and use
//! the same relaxed-atomic segments as [`crate::ThreadFabric`]; images on
//! different nodes talk through per-peer connections carrying
//! length-prefixed [`wire::Frame`]s.
//!
//! # Protocol
//!
//! For each ordered pair of processes (A, B), A dials B's listener exactly
//! once; that connection carries A's requests (puts, gets, AMOs, flag
//! adds, heartbeats, the graceful `Bye`) to B and B's responses (put acks,
//! get data, AMO results) back to A. B serves the connection with one
//! ingress thread that applies requests *in arrival order* — which,
//! together with the single per-peer egress writer, provides the fabric
//! memory model's point-to-point ordering: operations from one image to
//! one target complete in initiation order, and a flag update sent after a
//! put to the same target lands after the put's payload.
//!
//! Every remote put — blocking or not — carries an ack cookie, so
//! [`Fabric::quiet`] and [`Fabric::put_wait`] mean *remotely complete*,
//! not merely injected.
//!
//! # Robustness
//!
//! Connects retry with capped exponential backoff; every blocking wait has
//! a configurable timeout; each process heartbeats all peers and declares
//! a peer dead when nothing (data or heartbeat) has arrived from it within
//! [`SocketConfig::peer_timeout`]. Death, unexpected EOF, or a timeout
//! poisons the fabric: every image blocked in (or later entering) a wait
//! panics with a report naming the dead process and its 1-based image
//! ranks, plus the tracer's recent-operation window when tracing is on —
//! a loud failure instead of a silent hang.

pub mod obs;
pub mod rendezvous;
pub mod shm;
pub mod wire;

pub use obs::{
    HeartbeatSnapshot, HistSnapshot, NodeTelemetry, ObsSnapshot, PeerWireSnapshot, TelemetryPhase,
};
pub use rendezvous::CoordClient;
pub use wire::{Addr, Frame, Listener, Stream, Transport};

use crate::am::AmOp;
use crate::seg::{FlagId, SegmentId, SharedBytes};
use crate::stats::{FabricStats, StatsSnapshot};
use crate::{Fabric, PutToken, RecoveryError};
use caf_topology::{CostParams, ImageMap, NodeId, ProcId, SoftwareOverheads};
use caf_trace::{Event, EventKind, Tracer};
use crossbeam::utils::{Backoff, CachePadded};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wire::{read_frame, write_frame, WIRE_MAGIC};

/// Configuration for a [`SocketFabric`].
#[derive(Clone, Debug)]
pub struct SocketConfig {
    /// Cost parameters (reported through [`Fabric::cost`]; the socket
    /// fabric injects no modeled delays — the wire is real).
    pub cost: CostParams,
    /// Software overheads (reported through [`Fabric::overheads`]).
    pub overheads: SoftwareOverheads,
    /// Trace sink; an enabled tracer records every fabric operation with
    /// socket queueing-vs-service split on remote ops.
    pub tracer: Tracer,
    /// Unix-domain sockets or TCP.
    pub transport: Transport,
    /// Upper bound on any single blocking remote operation (put ack, get
    /// response, AMO response) and on fleet establishment.
    pub io_timeout: Duration,
    /// First connect-retry backoff; doubles per attempt.
    pub connect_backoff_start: Duration,
    /// Backoff cap.
    pub connect_backoff_cap: Duration,
    /// How often each process sends heartbeats to every peer.
    pub heartbeat_period: Duration,
    /// A peer from which nothing has arrived for this long is dead.
    pub peer_timeout: Duration,
    /// Upper bound on one [`Fabric::flag_wait_ge`] (collectives on a
    /// healthy fleet finish in milliseconds; a wait this long means a
    /// hung or dead peer that heartbeats somehow missed).
    pub flag_wait_timeout: Duration,
    /// Survivable-fleet mode (`CAF_RESPAWN=1`): a dead peer still poisons
    /// the fabric, but service threads stay up, the data listener keeps
    /// accepting, and [`Fabric::heal`] waits for the supervisor to respawn
    /// the dead rank and for its [`Frame::Rejoin`] handshake instead of
    /// treating the death as final.
    pub respawn: bool,
    /// `Some(g)`: this process is a **respawned incarnation** of its rank
    /// (`CAF_GENERATION=g`), rejoining a running fleet to establish
    /// recovery generation `g`. It skips nothing locally — fresh slots are
    /// exactly the post-heal state — but dials peers with
    /// [`Frame::Rejoin`] instead of [`Frame::Open`] and starts its
    /// generation counter at `g - 1` so the fleet-wide heal lands everyone
    /// on `g` together.
    pub rejoin_generation: Option<u64>,
    /// Shared-memory intranode tier: host every hosted segment in an
    /// mmap-backed node segment peers on the same host map, so
    /// cross-process puts/gets/AMOs/flag adds between them skip the wire
    /// entirely. On by default where supported; `CAF_SOCKET_SHM=0` keeps
    /// the pure-socket path as the differential oracle.
    pub shm: bool,
    /// Shared-segment arena bytes reserved per hosted image
    /// (`CAF_SOCKET_SHM_BYTES`). Allocation past this (or past the shared
    /// directory's `shm::MAX_SEGS` entries) degrades gracefully: the
    /// window spills to the owner's heap and peers reach it over the wire
    /// — its directory entry stays unpublished, so both sides agree
    /// without a handshake. Mixing wire and shm ops to one destination
    /// stays ordered because flag publication falls back to the frame
    /// path while asynchronous wire puts to that peer are unacked (see
    /// `PendingTable::wire_nb_to`).
    pub shm_bytes_per_image: usize,
}

impl Default for SocketConfig {
    fn default() -> Self {
        Self {
            cost: CostParams::default(),
            overheads: SoftwareOverheads::NONE,
            tracer: Tracer::off(),
            transport: Transport::Uds,
            io_timeout: Duration::from_secs(10),
            connect_backoff_start: Duration::from_millis(10),
            connect_backoff_cap: Duration::from_millis(500),
            heartbeat_period: Duration::from_millis(100),
            peer_timeout: Duration::from_secs(2),
            flag_wait_timeout: Duration::from_secs(30),
            respawn: false,
            rejoin_generation: None,
            shm: cfg!(unix),
            shm_bytes_per_image: shm::DEFAULT_ARENA_PER_IMAGE,
        }
    }
}

impl SocketConfig {
    /// Default configuration with environment overrides applied:
    /// `CAF_SOCKET_TCP=1` selects TCP, `CAF_SOCKET_IO_TIMEOUT_MS`,
    /// `CAF_SOCKET_PEER_TIMEOUT_MS`, `CAF_SOCKET_HEARTBEAT_MS`, and
    /// `CAF_SOCKET_FLAG_TIMEOUT_MS` override the corresponding timeouts.
    /// `CAF_RESPAWN=1` enables survivable-fleet mode and `CAF_GENERATION=g`
    /// (g ≥ 1, set by the supervisor on a respawned child) marks this
    /// process as a rejoining incarnation establishing generation `g`.
    /// `CAF_SOCKET_SHM=0` disables the shared-memory intranode tier and
    /// `CAF_SOCKET_SHM_BYTES` sizes its per-image arena.
    pub fn from_env() -> Self {
        let ms = |var: &str, default: Duration| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .map(Duration::from_millis)
                .unwrap_or(default)
        };
        let d = Self::default();
        Self {
            transport: Transport::from_env(),
            io_timeout: ms("CAF_SOCKET_IO_TIMEOUT_MS", d.io_timeout),
            peer_timeout: ms("CAF_SOCKET_PEER_TIMEOUT_MS", d.peer_timeout),
            heartbeat_period: ms("CAF_SOCKET_HEARTBEAT_MS", d.heartbeat_period),
            flag_wait_timeout: ms("CAF_SOCKET_FLAG_TIMEOUT_MS", d.flag_wait_timeout),
            respawn: std::env::var(crate::ENV_RESPAWN).is_ok_and(|v| v == "1"),
            rejoin_generation: std::env::var(crate::ENV_GENERATION)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|g| *g > 0),
            shm: d.shm && std::env::var(shm::ENV_SHM).map_or(true, |v| v != "0"),
            shm_bytes_per_image: std::env::var(shm::ENV_SHM_BYTES)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(d.shm_bytes_per_image),
            ..d
        }
    }
}

/// One hosted segment's storage: heap bytes (single-process fleets, or
/// `CAF_SOCKET_SHM=0`) or a window into this process's shared-memory
/// segment, where same-host peers service their traffic directly. The
/// API (and panic contract) mirrors [`SharedBytes`].
#[derive(Clone)]
enum Window {
    Heap(Arc<SharedBytes>),
    Shm(shm::ShmWindow),
}

impl Window {
    fn len(&self) -> usize {
        match self {
            Window::Heap(s) => s.len(),
            Window::Shm(w) => w.len(),
        }
    }

    fn write(&self, offset: usize, src: &[u8]) {
        match self {
            Window::Heap(s) => s.write(offset, src),
            Window::Shm(w) => w.write(offset, src),
        }
    }

    fn read(&self, offset: usize, dst: &mut [u8]) {
        match self {
            Window::Heap(s) => s.read(offset, dst),
            Window::Shm(w) => w.read(offset, dst),
        }
    }

    fn as_atomic_u64(&self, offset: usize) -> &AtomicU64 {
        match self {
            Window::Heap(s) => s.as_atomic_u64(offset),
            Window::Shm(w) => w.as_atomic_u64(offset),
        }
    }
}

/// One hosted sync flag's cell: heap, or a slot in the shared flag table
/// where same-host peers bump it without a frame.
#[derive(Clone)]
enum FlagCell {
    Heap(Arc<CachePadded<AtomicU64>>),
    Shm(shm::ShmFlag),
}

impl FlagCell {
    fn cell(&self) -> &AtomicU64 {
        match self {
            FlagCell::Heap(c) => c,
            FlagCell::Shm(f) => f.cell(),
        }
    }
}

/// A same-host peer's mapped shared segment plus its hosted-image list
/// (global image index → slot index inside the peer's segment).
struct ShmPeer {
    seg: shm::PeerShm,
    images: Vec<usize>,
}

impl ShmPeer {
    fn local_idx(&self, img: usize) -> usize {
        self.images
            .iter()
            .position(|&i| i == img)
            .unwrap_or_else(|| panic!("image {img} is not hosted by its shm peer"))
    }

    /// Resolve `img`'s segment `seg` inside the peer's mapped arena.
    /// `None` means the owner never published it — the id spilled past
    /// the shared directory or the arena ran dry, so the window lives on
    /// the owner's heap and is reachable only over the wire (see
    /// `SocketFabric::alloc_segment`).
    fn window(&self, img: usize, seg: SegmentId) -> Option<shm::ShmWindow> {
        self.seg.window(self.local_idx(img), seg.0)
    }

    fn flag(&self, img: usize, flag: FlagId) -> shm::ShmFlag {
        self.seg.flag(self.local_idx(img), flag.0)
    }
}

/// Per-hosted-image storage — same shape as the thread fabric's slots.
struct ImageSlot {
    segs: RwLock<Vec<Window>>,
    flags: RwLock<Vec<FlagCell>>,
}

/// An in-flight request awaiting its response frame.
enum Pending {
    /// A blocking caller parked on the table's condvar.
    Sync(Option<Reply>),
    /// A nonblocking put; `img` indexes `outstanding_nb` and `rank`
    /// indexes `wire_nb_to`.
    Nb { img: usize, rank: usize },
    /// An active-message batch awaiting its ack. Shares the sender's
    /// `outstanding_nb` debt so `quiet` covers batched AMs, but does not
    /// count as a nonblocking-put completion in the stats.
    AmBatch { img: usize, rank: usize },
}

enum Reply {
    Ack,
    Data(Vec<u8>),
    Val(u64),
}

/// Cookie-indexed in-flight requests plus per-image nonblocking-put debt,
/// all mutated under one lock so `quiet`'s wakeups cannot be lost.
struct PendingTable {
    entries: HashMap<u64, Pending>,
    outstanding_nb: Vec<u64>,
    /// Unacked asynchronous wire data ops (nonblocking puts, AM batches)
    /// per destination *process rank*. While this is non-zero for a rank,
    /// a flag routed through shared memory could become visible at that
    /// destination before the in-flight payload (a window spilled to the
    /// owner's heap travels by frame even between same-host peers), so the
    /// shm flag fast path must yield to the frame path — frames on the
    /// shared per-peer connection apply in send order, which restores the
    /// put_nb point-to-point ordering contract.
    wire_nb_to: Vec<u64>,
}

/// The buffered, serialized write half of one egress connection.
struct Egress {
    writer: Mutex<BufWriter<Stream>>,
}

const PEER_ALIVE: u8 = 0;
const PEER_GRACEFUL: u8 = 1;
const PEER_DEAD: u8 = 2;

/// How long an unexplained EOF may wait for a racing `Bye` (on the other
/// connection of the pair) before it is declared a death.
const EOF_GRACE: Duration = Duration::from_millis(300);

/// Poll period of every service-thread loop (bounds shutdown latency).
const POLL: Duration = Duration::from_millis(50);

/// The multi-process socket fabric. Build one per process with
/// [`SocketFabric::join`]; see the module docs for the protocol.
pub struct SocketFabric {
    map: ImageMap,
    cfg: SocketConfig,
    stats: FabricStats,
    start: Instant,
    /// Occupied nodes in `NodeId` order; index = process rank.
    occ: Vec<NodeId>,
    /// Process rank hosting each global image.
    proc_of_image: Vec<usize>,
    /// This process's rank in `occ`.
    node_rank: usize,
    /// Images this process hosts, in rank order.
    hosted: Vec<ProcId>,
    /// Storage per global image; `Some` only for hosted images.
    slots: Vec<Option<ImageSlot>>,
    /// Egress write halves per peer process rank (`None` at own rank).
    /// Replaceable (not write-once): a rejoin handshake swaps in a fresh
    /// connection to a respawned peer.
    egress: Vec<RwLock<Option<Arc<Egress>>>>,
    /// Monotonic request-cookie source (0 is reserved = "complete").
    next_cookie: AtomicU64,
    pending: Mutex<PendingTable>,
    pending_cv: Condvar,
    /// Parked `flag_wait_ge` callers; adds take the wake lock only when
    /// someone may be parked.
    parked: AtomicUsize,
    wake_lock: Mutex<()>,
    wake_cv: Condvar,
    poisoned: Mutex<Option<String>>,
    poison_flag: AtomicBool,
    trace_sys_lock: Mutex<()>,
    /// Liveness per peer process: ns-since-start of the last frame seen.
    last_seen: Vec<CachePadded<AtomicU64>>,
    peer_state: Vec<AtomicU8>,
    /// Observability probes: per-peer wire counters, put-ack latency
    /// histogram, heartbeat jitter (see [`obs`]).
    obs: obs::SocketObs,
    /// Each peer's counter snapshot from its most recent heartbeat — the
    /// fleet's last-known picture of a process that stops talking.
    last_peer_stats: Vec<Mutex<Option<StatsSnapshot>>>,
    /// Ingress connections established so far (fleet bring-up gate).
    ingress_up: AtomicUsize,
    /// This process's shared-memory segment (`None`: tier disabled,
    /// single-process fleet, or unsupported platform).
    shm: Option<shm::NodeShm>,
    /// Same-host peers' mapped segments, per process rank (`None` until
    /// the peer's `Open`/`Rejoin` announces one). A rejoin swaps in the
    /// new incarnation's segment.
    shm_peers: Vec<RwLock<Option<Arc<ShmPeer>>>>,
    /// Hosted images that called `image_done`.
    done_count: AtomicUsize,
    /// All hosted images finished — EOFs are expected from here on.
    all_done: AtomicBool,
    /// Orderly teardown requested; service threads drain and exit.
    shutting_down: AtomicBool,
    /// Fault-injection hook tripped (see [`SocketFabric::sever`]).
    severed: AtomicBool,
    /// Completed recovery generations (plus any inherited at construction
    /// by a respawned process).
    generation: AtomicU64,
    /// Hosted images' heal rendezvous (the process-local half of
    /// [`Fabric::heal`]).
    heal: Mutex<HealState>,
    heal_cv: Condvar,
    /// `(generation, round)` → peer ranks whose [`Frame::RecoverBarrier`]
    /// mark has arrived.
    recover_marks: Mutex<HashMap<(u64, u64), std::collections::HashSet<usize>>>,
    recover_cv: Condvar,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Process-local heal rendezvous: hosted images gather here; the last
/// arrival runs the fleet-wide recovery fence.
struct HealState {
    waiting: usize,
    round: u64,
    /// Failure report of the round's fence leader, for the waiters.
    failed: Option<String>,
}

impl SocketFabric {
    /// Join a fleet: bind a data-plane listener, rendezvous through the
    /// coordinator at `coord`, connect to every peer (with retry/backoff),
    /// and start the service threads. Returns the fabric plus the still-open
    /// coordinator connection (for [`CoordClient::send_done`]).
    ///
    /// `node_rank` is this process's index into the occupied-node list of
    /// `map` (rank `i` hosts the images of the `i`-th occupied node).
    pub fn join(
        map: ImageMap,
        node_rank: usize,
        coord: &Addr,
        cfg: SocketConfig,
    ) -> io::Result<(Arc<SocketFabric>, CoordClient)> {
        let occ: Vec<NodeId> = (0..map.machine().nodes)
            .map(NodeId)
            .filter(|n| !map.images_on_node(*n).is_empty())
            .collect();
        let n_procs = occ.len();
        if node_rank >= n_procs {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("node rank {node_rank} out of {n_procs} occupied nodes"),
            ));
        }
        let mut proc_of_image = vec![0usize; map.n_images()];
        for (rank, node) in occ.iter().enumerate() {
            for img in map.images_on_node(*node) {
                proc_of_image[img.index()] = rank;
            }
        }
        let hosted: Vec<ProcId> = map.images_on_node(occ[node_rank]).to_vec();
        // With the shm tier on, every hosted segment lives in this
        // process's node segment so same-host peers (and direct-landing
        // wire puts) write into it without staging. All-or-nothing per
        // fleet: mixing shm and heap segments for one image would let a
        // peer's data ops to it take different paths and lose program
        // order.
        let node_shm = if cfg.shm && n_procs > 1 {
            match shm::NodeShm::create(
                node_rank,
                cfg.rejoin_generation.unwrap_or(0),
                hosted.len(),
                cfg.shm_bytes_per_image,
            ) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("caf-socket: shared-memory tier disabled: {e}");
                    None
                }
            }
        } else {
            None
        };
        let boot_len = map.n_images() * crate::bootstrap::SLOT_BYTES;
        let slots = (0..map.n_images())
            .map(|i| {
                if proc_of_image[i] != node_rank {
                    return None;
                }
                let local = hosted
                    .iter()
                    .position(|p| p.index() == i)
                    .expect("hosted image missing from its own node list");
                let (seg0, flags) = match &node_shm {
                    Some(s) => (
                        Window::Shm(
                            s.alloc(local, 0, boot_len)
                                .unwrap_or_else(|e| panic!("image {i} bootstrap segment: {e}")),
                        ),
                        (0..crate::bootstrap::NUM_FLAGS)
                            .map(|f| FlagCell::Shm(s.flag(local, f)))
                            .collect(),
                    ),
                    None => (
                        Window::Heap(Arc::new(SharedBytes::new(boot_len))),
                        (0..crate::bootstrap::NUM_FLAGS)
                            .map(|_| FlagCell::Heap(Arc::new(CachePadded::new(AtomicU64::new(0)))))
                            .collect(),
                    ),
                };
                Some(ImageSlot {
                    segs: RwLock::new(vec![seg0]),
                    flags: RwLock::new(flags),
                })
            })
            .collect();
        if let Some(s) = &node_shm {
            s.seal_bootstrap();
        }

        let listener = Listener::bind(cfg.transport)?;
        let listen_addr = listener.local_addr()?;
        let (coord_client, peers) =
            CoordClient::join(coord, node_rank as u32, &listen_addr, cfg.io_timeout)?;
        if peers.len() != n_procs {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "coordinator announced {} members but the image map has {n_procs} \
                     occupied nodes",
                    peers.len()
                ),
            ));
        }

        let n_images = map.n_images();
        let fabric = Arc::new(SocketFabric {
            map,
            stats: FabricStats::default(),
            start: Instant::now(),
            proc_of_image,
            node_rank,
            hosted,
            slots,
            egress: (0..n_procs).map(|_| RwLock::new(None)).collect(),
            next_cookie: AtomicU64::new(1),
            pending: Mutex::new(PendingTable {
                entries: HashMap::new(),
                outstanding_nb: vec![0; n_images],
                wire_nb_to: vec![0; n_procs],
            }),
            pending_cv: Condvar::new(),
            parked: AtomicUsize::new(0),
            wake_lock: Mutex::new(()),
            wake_cv: Condvar::new(),
            poisoned: Mutex::new(None),
            poison_flag: AtomicBool::new(false),
            trace_sys_lock: Mutex::new(()),
            last_seen: (0..n_procs)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            peer_state: (0..n_procs).map(|_| AtomicU8::new(PEER_ALIVE)).collect(),
            obs: obs::SocketObs::new(n_procs, cfg.heartbeat_period.as_nanos() as u64),
            last_peer_stats: (0..n_procs).map(|_| Mutex::new(None)).collect(),
            ingress_up: AtomicUsize::new(0),
            shm: node_shm,
            shm_peers: (0..n_procs).map(|_| RwLock::new(None)).collect(),
            done_count: AtomicUsize::new(0),
            all_done: AtomicBool::new(false),
            shutting_down: AtomicBool::new(false),
            severed: AtomicBool::new(false),
            generation: AtomicU64::new(cfg.rejoin_generation.map_or(0, |g| g - 1)),
            heal: Mutex::new(HealState {
                waiting: 0,
                round: 0,
                failed: None,
            }),
            heal_cv: Condvar::new(),
            recover_marks: Mutex::new(HashMap::new()),
            recover_cv: Condvar::new(),
            threads: Mutex::new(Vec::new()),
            occ,
            cfg,
        });

        if n_procs > 1 {
            fabric.spawn_accepting(listener, n_procs - 1);
            // A respawned incarnation announces itself with Rejoin (which
            // carries its fresh listen address so survivors can back-dial);
            // a first-life member sends the plain Open handshake.
            let hello = match fabric.cfg.rejoin_generation {
                Some(generation) => Frame::Rejoin {
                    node: node_rank as u32,
                    generation,
                    addr: listen_addr.to_string(),
                    magic: WIRE_MAGIC,
                    shm: fabric.own_shm_path(),
                },
                None => Frame::Open {
                    node: node_rank as u32,
                    magic: WIRE_MAGIC,
                    shm: fabric.own_shm_path(),
                },
            };
            for (rank, addr) in peers.iter().enumerate() {
                if rank != node_rank {
                    fabric.dial_peer(rank, addr, &hello)?;
                }
            }
            fabric.wait_established(n_procs - 1)?;
            let hb = fabric.clone();
            fabric.spawn_guarded("heartbeat", move || hb.heartbeat_loop());
        }
        Ok((fabric, coord_client))
    }

    /// Images hosted by this process, in rank order.
    pub fn hosted(&self) -> &[ProcId] {
        &self.hosted
    }

    /// Assemble this process's observability shipment: counters, wire
    /// probes, and — except for [`TelemetryPhase::Live`] — the full
    /// retained trace window. `cause` is recorded for flight recorders.
    pub fn node_telemetry(&self, phase: TelemetryPhase, cause: Option<&str>) -> NodeTelemetry {
        NodeTelemetry {
            node: self.node_rank as u32,
            phase,
            sent_at_ns: self.wall_now(),
            cause: cause.unwrap_or_default().to_string(),
            images: self.hosted.iter().map(|p| p.index() as u32).collect(),
            stats: self.stats.snapshot(),
            obs: self.obs.snapshot(),
            events: if phase == TelemetryPhase::Live {
                Vec::new()
            } else {
                self.cfg.tracer.events()
            },
        }
    }

    /// The counter snapshot `peer` shipped in its most recent heartbeat,
    /// if any arrived.
    pub fn last_peer_stats(&self, peer: usize) -> Option<StatsSnapshot> {
        *self.last_peer_stats[peer].lock()
    }

    /// This process's rank among the fleet's occupied nodes.
    pub fn node_rank(&self) -> usize {
        self.node_rank
    }

    /// Orderly teardown: stop and join every service thread, closing all
    /// connections. Call from the launching thread after the hosted images
    /// finished (never from a fabric callback — it joins the very threads
    /// a callback may run on).
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Fault-injection hook: abruptly stop serving — close every egress
    /// write half, stop answering requests and heartbeats — *without* the
    /// graceful `Bye`. To every peer this process is now indistinguishable
    /// from a killed one; used by tests to exercise the death-detection
    /// path inside one OS process.
    pub fn sever(&self) {
        self.severed.store(true, Ordering::Release);
        for e in &self.egress {
            if let Some(e) = &*e.read() {
                let w = e.writer.lock();
                w.get_ref().shutdown_write();
            }
        }
    }

    /// The current egress connection to process `rank`, if one is up.
    fn egress_to(&self, rank: usize) -> Option<Arc<Egress>> {
        self.egress[rank].read().clone()
    }

    // ---- construction helpers ----------------------------------------

    fn spawn_guarded(self: &Arc<Self>, name: &'static str, f: impl FnOnce() + Send + 'static) {
        let fab = self.clone();
        let h = std::thread::Builder::new()
            .name(format!("caf-sock-{name}"))
            .spawn(move || {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                if let Err(p) = r {
                    let msg = p
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "socket service thread panicked".into());
                    if !fab.shutting_down.load(Ordering::Acquire) {
                        fab.poison(&format!("socket fabric {name} thread: {msg}"));
                    }
                }
            })
            .expect("spawn socket service thread");
        self.threads.lock().push(h);
    }

    /// Accept loop: collect `expected` ingress connections, identify each
    /// by its `Open` (or, in respawn mode, `Rejoin`) frame, and hand it to
    /// a dedicated ingress thread. In respawn mode the listener stays up
    /// past fleet bring-up so a respawned peer can dial back in at any
    /// point in the run.
    fn spawn_accepting(self: &Arc<Self>, listener: Listener, expected: usize) {
        let fab = self.clone();
        self.spawn_guarded("accept", move || {
            listener
                .set_nonblocking(true)
                .expect("listener nonblocking");
            let mut accepted = 0;
            while !fab.stopping()
                && (accepted < expected
                    || (fab.cfg.respawn && !fab.all_done.load(Ordering::Acquire)))
            {
                match listener.accept() {
                    Ok(stream) => {
                        stream
                            .set_read_timeout(Some(POLL))
                            .expect("ingress read timeout");
                        let mut reader =
                            BufReader::new(stream.try_clone().expect("clone ingress stream"));
                        // First frame must identify the dialer.
                        let deadline = Instant::now() + fab.cfg.io_timeout;
                        let (peer, peer_shm) = loop {
                            match read_frame(&mut reader) {
                                Ok((Frame::Open { node, magic, shm }, n)) => {
                                    assert_eq!(
                                        magic, WIRE_MAGIC,
                                        "wire-protocol version mismatch from process {node}"
                                    );
                                    fab.stats.record_wire_rx(n);
                                    fab.obs.wire_rx(node as usize, n);
                                    break (node as usize, shm);
                                }
                                Ok((
                                    Frame::Rejoin {
                                        node,
                                        generation,
                                        addr,
                                        magic,
                                        shm,
                                    },
                                    n,
                                )) => {
                                    assert_eq!(
                                        magic, WIRE_MAGIC,
                                        "wire-protocol version mismatch from process {node}"
                                    );
                                    fab.stats.record_wire_rx(n);
                                    fab.obs.wire_rx(node as usize, n);
                                    match fab.accept_rejoin(node as usize, generation, &addr, &shm)
                                    {
                                        Ok(()) => break (node as usize, String::new()),
                                        Err(e) => {
                                            eprintln!(
                                                "caf-socket: rejected rejoin from process \
                                                 {node}: {e}"
                                            );
                                            break (usize::MAX, String::new()); // drop it
                                        }
                                    }
                                }
                                Ok((other, _)) => {
                                    panic!("expected Open on new connection, got {other:?}")
                                }
                                Err(e) if is_timeout(&e) => {
                                    if Instant::now() > deadline || fab.stopping() {
                                        return;
                                    }
                                }
                                // Dialer vanished pre-handshake.
                                Err(_) => break (usize::MAX, String::new()),
                            }
                        };
                        if peer == usize::MAX {
                            continue;
                        }
                        // Map the dialer's segment before its ingress
                        // thread starts: once requests flow, replies may
                        // race reads of segments only the mapping serves.
                        if !peer_shm.is_empty() {
                            fab.map_shm_peer(peer, &peer_shm);
                        }
                        fab.mark_seen(peer);
                        accepted += 1;
                        fab.ingress_up.fetch_add(1, Ordering::Release);
                        let f2 = fab.clone();
                        f2.clone().spawn_guarded("ingress", move || {
                            f2.ingress_loop(peer, reader, stream)
                        });
                    }
                    Err(e) if is_timeout(&e) => std::thread::sleep(Duration::from_millis(2)),
                    Err(e) => panic!("accept failed: {e}"),
                }
            }
            // Fleet fully connected (or tearing down): drop the listener,
            // unlinking the socket file.
        });
    }

    /// A respawned incarnation of `node` dialed in: validate its
    /// generation, rebuild the egress half of the pair by back-dialing its
    /// fresh address, and revive its liveness state. Runs on the accept
    /// thread *before* the ingress thread for the new connection starts,
    /// so by the time the rejoiner's first request arrives the pair is
    /// fully re-established.
    fn accept_rejoin(
        self: &Arc<Self>,
        node: usize,
        generation: u64,
        addr: &str,
        shm_path: &str,
    ) -> io::Result<()> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        if !self.cfg.respawn {
            return Err(bad("rejoin received but respawn mode is off".into()));
        }
        if node >= self.occ.len() || node == self.node_rank {
            return Err(bad(format!("bogus rejoin rank {node}")));
        }
        // A stale frame from a dead incarnation carries an old generation;
        // only the incarnation establishing the *next* generation may join.
        let current = self.generation.load(Ordering::Acquire);
        if generation != current + 1 {
            return Err(bad(format!(
                "stale rejoin generation {generation} (current {current})"
            )));
        }
        let peer_addr: Addr = addr
            .parse()
            .map_err(|e: String| bad(format!("unparseable rejoin address {addr:?}: {e}")))?;
        // The rejoin may outrun our own death detection (EOF grace still
        // ticking). Recovery needs every survivor to observe the death —
        // poison is what sends hosted images into `heal` — so declare it
        // now; a no-op if the heartbeat/EOF path already did.
        self.declare_dead(node, "peer process restarted (rejoin handshake)");
        // Replace the dead egress before flipping the peer alive: anyone
        // observing PEER_ALIVE must find a usable connection.
        let hello = Frame::Open {
            node: self.node_rank as u32,
            magic: WIRE_MAGIC,
            shm: self.own_shm_path(),
        };
        self.dial_peer(node, &peer_addr, &hello)?;
        // The dead incarnation's segment is gone; remap (or drop) before
        // anyone observes PEER_ALIVE and routes data ops through shm.
        self.shm_peers[node].write().take();
        if !shm_path.is_empty() {
            self.map_shm_peer(node, shm_path);
        }
        *self.last_peer_stats[node].lock() = None;
        self.mark_seen(node);
        self.peer_state[node].store(PEER_ALIVE, Ordering::Release);
        Ok(())
    }

    /// This process's shared-segment path, as announced in handshakes
    /// (empty when the tier is off).
    fn own_shm_path(&self) -> String {
        self.shm
            .as_ref()
            .map(|s| s.path().display().to_string())
            .unwrap_or_default()
    }

    /// Map the shared segment `rank` announced in its handshake. Failure
    /// is a warning, not an error: traffic *to* that peer falls back to
    /// the wire, and each direction independently keeps program order.
    fn map_shm_peer(&self, rank: usize, path: &str) {
        if !self.cfg.shm {
            return;
        }
        match shm::PeerShm::open(std::path::Path::new(path)) {
            Ok(seg) => {
                let images = self
                    .map
                    .images_on_node(self.occ[rank])
                    .iter()
                    .map(|p| p.index())
                    .collect();
                *self.shm_peers[rank].write() = Some(Arc::new(ShmPeer { seg, images }));
            }
            Err(e) => eprintln!(
                "caf-socket: cannot map shared segment of process {rank} ({path}): {e}; \
                 using the wire for it"
            ),
        }
    }

    /// Dial peer `rank` with capped exponential backoff, send `hello`
    /// (`Open`, or `Rejoin` when this process is a respawned incarnation),
    /// store the write half, and start the response-reader thread. The
    /// egress slot is *replaced*, not set-once: a rejoin re-dials a peer
    /// whose previous connection died with the old incarnation.
    fn dial_peer(self: &Arc<Self>, rank: usize, addr: &Addr, hello: &Frame) -> io::Result<()> {
        let t0 = Instant::now();
        let mut backoff = self.cfg.connect_backoff_start;
        let mut attempts = 0u64;
        let stream = loop {
            match Stream::connect(addr) {
                Ok(s) => break s,
                Err(e) => {
                    attempts += 1;
                    self.stats.wire_retries.fetch_add(1, Ordering::Relaxed);
                    if t0.elapsed() >= self.cfg.io_timeout {
                        return Err(io::Error::new(
                            e.kind(),
                            format!(
                                "{}: peer {addr} unreachable after {attempts} attempts: {e}",
                                self.peer_desc(rank)
                            ),
                        ));
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(self.cfg.connect_backoff_cap);
                }
            }
        };
        if attempts > 0 {
            self.stats.wire_reconnects.fetch_add(1, Ordering::Relaxed);
        }
        self.obs.dial_result(rank, attempts);
        stream.set_read_timeout(Some(POLL))?;
        stream.set_write_timeout(Some(self.cfg.io_timeout))?;
        let reader_half = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        let n = write_frame(&mut writer, hello)?;
        self.stats.record_wire_tx(n);
        self.obs.wire_tx(rank, n);
        *self.egress[rank].write() = Some(Arc::new(Egress {
            writer: Mutex::new(writer),
        }));
        self.mark_seen(rank);
        let fab = self.clone();
        self.spawn_guarded("response", move || fab.response_loop(rank, reader_half));
        Ok(())
    }

    /// Block until every ingress connection is up (egress dials complete
    /// synchronously in `join`).
    fn wait_established(&self, expected: usize) -> io::Result<()> {
        let deadline = Instant::now() + self.cfg.io_timeout;
        while self.ingress_up.load(Ordering::Acquire) < expected {
            if Instant::now() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "fleet bring-up timed out: {}/{expected} ingress connections \
                         after {:?}",
                        self.ingress_up.load(Ordering::Acquire),
                        self.cfg.io_timeout
                    ),
                ));
            }
            if let Some(msg) = self.poisoned.lock().clone() {
                return Err(io::Error::other(msg));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        Ok(())
    }

    // ---- service threads ---------------------------------------------

    /// Serve one peer's requests: apply them in arrival order and write
    /// responses back on the same connection.
    fn ingress_loop(&self, peer: usize, mut reader: BufReader<Stream>, stream: Stream) {
        let mut writer = BufWriter::new(stream);
        loop {
            if self.stopping() {
                return;
            }
            let raw = match wire::read_frame_direct(&mut reader) {
                Ok((f, n)) => {
                    self.stats.record_wire_rx(n);
                    self.obs.wire_rx(peer, n);
                    self.mark_seen(peer);
                    f
                }
                Err(e) if is_timeout(&e) => continue,
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    // A malformed frame is a protocol bug (or a corrupted
                    // wire), not a peer death: poison loudly with context
                    // instead of letting the I/O thread die quietly.
                    self.malformed_frame(peer, &e);
                    return;
                }
                Err(_) => {
                    self.peer_eof(peer);
                    return;
                }
            };
            let frame = match raw {
                // Puts land straight from the frame buffer into the
                // destination window — when the window lives in the shared
                // segment, a cross-node put is one copy, wire to segment,
                // with no intermediate heap staging.
                wire::RawFrame::Put {
                    src: _,
                    dst,
                    seg,
                    off,
                    ack,
                    buf,
                    payload,
                } => {
                    self.seg_of(dst as usize, SegmentId(seg as usize))
                        .write(off as usize, &buf[payload..]);
                    if ack != 0 {
                        self.send_response(peer, &mut writer, &Frame::PutAck { ack });
                    }
                    continue;
                }
                wire::RawFrame::Other(f) => f,
            };
            match frame {
                Frame::Get {
                    src: _,
                    dst,
                    seg,
                    off,
                    len,
                    req,
                } => {
                    let mut data = vec![0u8; len as usize];
                    self.seg_of(dst as usize, SegmentId(seg as usize))
                        .read(off as usize, &mut data);
                    self.send_response(peer, &mut writer, &Frame::GetResp { req, data });
                }
                Frame::AmoFadd {
                    src: _,
                    dst,
                    seg,
                    off,
                    delta,
                    req,
                } => {
                    let old = self
                        .seg_of(dst as usize, SegmentId(seg as usize))
                        .as_atomic_u64(off as usize)
                        .fetch_add(delta, Ordering::AcqRel);
                    self.send_response(peer, &mut writer, &Frame::AmoResp { req, old });
                }
                Frame::AmoCas {
                    src: _,
                    dst,
                    seg,
                    off,
                    expected,
                    new,
                    req,
                } => {
                    let old = match self
                        .seg_of(dst as usize, SegmentId(seg as usize))
                        .as_atomic_u64(off as usize)
                        .compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire)
                    {
                        Ok(v) | Err(v) => v,
                    };
                    self.send_response(peer, &mut writer, &Frame::AmoResp { req, old });
                }
                Frame::FlagAdd {
                    src,
                    dst,
                    flag,
                    delta,
                } => {
                    self.apply_flag_add(
                        src as usize,
                        dst as usize,
                        FlagId(flag as usize),
                        delta,
                        false,
                    );
                }
                Frame::AmBatch { src, dst, ack, ops } => {
                    // Apply in vector order: each op's effects are visible
                    // to every later op in the batch, and a flag landing
                    // after its payload preserves the fabric memory model.
                    self.apply_am_ops(src as usize, dst as usize, &ops, false);
                    if ack != 0 {
                        self.send_response(peer, &mut writer, &Frame::PutAck { ack });
                    }
                }
                Frame::Heartbeat { node: _, stats } => {
                    // Liveness came from `mark_seen`; keep the sender's
                    // counter snapshot (a dying process's last heartbeat is
                    // the fleet's only record of what it was doing) and its
                    // arrival time for jitter accounting.
                    self.obs.heartbeat_seen(peer, self.wall_now());
                    *self.last_peer_stats[peer].lock() = Some(stats);
                }
                Frame::Bye { .. } => {
                    self.peer_state[peer].store(PEER_GRACEFUL, Ordering::Release);
                }
                Frame::RecoverBarrier {
                    node,
                    round,
                    generation,
                } => {
                    self.record_recover_mark(node as usize, round, generation);
                }
                other => panic!("unexpected frame on data connection: {other:?}"),
            }
        }
    }

    /// Drain responses (acks, get data, AMO results) from one egress
    /// connection into the pending table.
    fn response_loop(&self, peer: usize, mut reader: BufReader<Stream>) {
        loop {
            if self.stopping() {
                return;
            }
            let frame = match read_frame(&mut reader) {
                Ok((f, n)) => {
                    self.stats.record_wire_rx(n);
                    self.obs.wire_rx(peer, n);
                    self.mark_seen(peer);
                    f
                }
                Err(e) if is_timeout(&e) => continue,
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    self.malformed_frame(peer, &e);
                    return;
                }
                Err(_) => {
                    self.peer_eof(peer);
                    return;
                }
            };
            match frame {
                Frame::PutAck { ack } => self.complete(ack, Reply::Ack),
                Frame::GetResp { req, data } => self.complete(req, Reply::Data(data)),
                Frame::AmoResp { req, old } => self.complete(req, Reply::Val(old)),
                other => panic!("unexpected frame on response path: {other:?}"),
            }
        }
    }

    /// Send heartbeats and watch for stale peers.
    fn heartbeat_loop(&self) {
        loop {
            std::thread::sleep(self.cfg.heartbeat_period);
            if self.stopping() || self.all_done.load(Ordering::Acquire) {
                return;
            }
            // One snapshot per beat, shared by every peer's frame: each
            // peer holds our last-known counters if we die mid-run.
            let snap = self.stats.snapshot();
            for rank in 0..self.occ.len() {
                if rank == self.node_rank {
                    continue;
                }
                if self.peer_state[rank].load(Ordering::Acquire) == PEER_DEAD {
                    // Dead peers get no heartbeats; in respawn mode the
                    // slot may come back to life, so keep watching.
                    continue;
                }
                if let Some(e) = self.egress_to(rank) {
                    let mut w = e.writer.lock();
                    if let Ok(n) = write_frame(
                        &mut *w,
                        &Frame::Heartbeat {
                            node: self.node_rank as u32,
                            stats: snap,
                        },
                    ) {
                        self.stats.record_wire_tx(n);
                        self.obs.wire_tx(rank, n);
                    }
                }
                if self.peer_state[rank].load(Ordering::Acquire) == PEER_ALIVE {
                    let seen = self.last_seen[rank].load(Ordering::Acquire);
                    let now = self.wall_now();
                    if now.saturating_sub(seen) > self.cfg.peer_timeout.as_nanos() as u64 {
                        self.declare_dead(
                            rank,
                            &format!(
                                "no frames for {:?} (peer timeout {:?})",
                                Duration::from_nanos(now.saturating_sub(seen)),
                                self.cfg.peer_timeout
                            ),
                        );
                        // In respawn mode survivors keep beating so they do
                        // not falsely time each other out during recovery.
                        if !self.cfg.respawn {
                            return;
                        }
                    }
                }
            }
        }
    }

    // ---- liveness ------------------------------------------------------

    fn stopping(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire) || self.severed.load(Ordering::Acquire)
    }

    fn mark_seen(&self, peer: usize) {
        self.last_seen[peer].store(self.wall_now(), Ordering::Release);
    }

    /// EOF or I/O error on a connection to `peer`: expected during orderly
    /// teardown or after its `Bye`; otherwise — after a short grace window
    /// for the `Bye` racing in on the other connection of the pair — it is
    /// a death.
    fn peer_eof(&self, peer: usize) {
        let entered = self.wall_now();
        let deadline = Instant::now() + EOF_GRACE;
        loop {
            if self.stopping()
                || self.all_done.load(Ordering::Acquire)
                || self.peer_state[peer].load(Ordering::Acquire) != PEER_ALIVE
            {
                return;
            }
            // The peer spoke *after* this connection hit EOF: a respawned
            // incarnation is already up on a fresh connection, and this
            // thread is watching the corpse of the old one. Not a death.
            if self.last_seen[peer].load(Ordering::Acquire) > entered {
                return;
            }
            if Instant::now() > deadline {
                self.declare_dead(peer, "connection closed without Bye");
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn declare_dead(&self, peer: usize, cause: &str) {
        if self.peer_state[peer]
            .compare_exchange(PEER_ALIVE, PEER_DEAD, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        let mut msg = format!("{} is dead: {cause}", self.peer_desc(peer));
        // Say what the fleet was doing, not just what this observer saw:
        // the dead node's own counters from its final heartbeat.
        match *self.last_peer_stats[peer].lock() {
            Some(s) => {
                msg.push_str("\ndead node last-known stats (from its final heartbeat): ");
                msg.push_str(&s.render_brief());
            }
            None => {
                msg.push_str("\n(no heartbeat stats were received from the dead node)");
            }
        }
        if self.cfg.tracer.enabled() {
            msg.push_str("\nrecent operations before the failure:\n");
            msg.push_str(&self.cfg.tracer.render_recent(5));
        }
        self.poison(&msg);
    }

    /// `"process R (node N, images i,j,...)"` with 1-based image numbers —
    /// the rank list operators grep for in failure reports.
    fn peer_desc(&self, peer: usize) -> String {
        let node = self.occ[peer];
        let imgs: Vec<String> = self
            .map
            .images_on_node(node)
            .iter()
            .map(|p| (p.index() + 1).to_string())
            .collect();
        format!(
            "peer process {peer} (node {}, images {})",
            node.index(),
            imgs.join(",")
        )
    }

    fn check_poison(&self, me: ProcId, doing: &str) {
        if self.poison_flag.load(Ordering::Acquire) {
            let msg = self.poisoned.lock().clone().unwrap_or_default();
            panic!("image {} {doing} failed: {msg}", me.index() + 1);
        }
    }

    // ---- recovery fence ------------------------------------------------

    /// An ingress thread received a peer's [`Frame::RecoverBarrier`] mark.
    fn record_recover_mark(&self, node: usize, round: u64, generation: u64) {
        let mut marks = self.recover_marks.lock();
        marks.entry((generation, round)).or_default().insert(node);
        self.recover_cv.notify_all();
    }

    /// One round of the fleet-wide recovery fence targeting `generation`:
    /// send our mark to every currently-alive peer, then wait for theirs.
    /// Marks ride the ordinary data connections, so a received round-1
    /// mark proves every pre-fence frame from that peer has already been
    /// applied (ingress is FIFO). Peers declared dead while we wait drop
    /// out of the participant set — that is the non-respawn shrink path.
    fn recover_round(
        &self,
        round: u64,
        generation: u64,
        deadline: Instant,
    ) -> Result<(), RecoveryError> {
        let frame = Frame::RecoverBarrier {
            node: self.node_rank as u32,
            round,
            generation,
        };
        for rank in 0..self.occ.len() {
            if rank == self.node_rank || self.peer_state[rank].load(Ordering::Acquire) != PEER_ALIVE
            {
                continue;
            }
            // Written straight to the egress writer: the request path's
            // poison checks would panic mid-recovery.
            if let Some(e) = self.egress_to(rank) {
                let mut w = e.writer.lock();
                match write_frame(&mut *w, &frame) {
                    Ok(n) => {
                        self.stats.record_wire_tx(n);
                        self.obs.wire_tx(rank, n);
                    }
                    Err(e) => {
                        return Err(RecoveryError::HealFailed(format!(
                            "recovery mark (round {round}) to {} failed: {e}",
                            self.peer_desc(rank)
                        )))
                    }
                }
            }
        }
        let mut marks = self.recover_marks.lock();
        loop {
            let have = marks.get(&(generation, round));
            let missing: Vec<usize> = (0..self.occ.len())
                .filter(|&r| {
                    r != self.node_rank
                        && self.peer_state[r].load(Ordering::Acquire) == PEER_ALIVE
                        && !have.is_some_and(|s| s.contains(&r))
                })
                .collect();
            if missing.is_empty() {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(RecoveryError::HealFailed(format!(
                    "recovery fence round {round} (generation {generation}) timed out \
                     waiting for processes {missing:?}"
                )));
            }
            self.recover_cv
                .wait_for(&mut marks, Duration::from_millis(50));
        }
    }

    /// Reset this process's synchronization state to the post-bootstrap
    /// shape a freshly-joined process has: bootstrap segment + control
    /// flags only (zeroed), no in-flight requests, no poison. Runs between
    /// the two fence rounds, when no process is issuing application
    /// traffic and every pre-fence frame has been applied.
    fn reset_local_state(&self) {
        for slot in self.slots.iter().flatten() {
            let mut segs = slot.segs.write();
            segs.truncate(crate::bootstrap::NUM_SEGS);
            let boot = &segs[crate::bootstrap::SEG.0];
            boot.write(0, &vec![0u8; boot.len()]);
            let mut flags = slot.flags.write();
            flags.truncate(crate::bootstrap::NUM_FLAGS);
            for f in flags.iter() {
                f.cell().store(0, Ordering::Release);
            }
        }
        // Mirror the rollback in the shared segment: unpublish every
        // post-bootstrap directory entry, zero the whole flag table, and
        // roll the arena back so re-allocated segments land where peers
        // expect them.
        if let Some(s) = &self.shm {
            s.reset(crate::bootstrap::NUM_SEGS);
        }
        {
            let mut g = self.pending.lock();
            g.entries.clear();
            for n in g.outstanding_nb.iter_mut() {
                *n = 0;
            }
            for n in g.wire_nb_to.iter_mut() {
                *n = 0;
            }
        }
        *self.poisoned.lock() = None;
        self.poison_flag.store(false, Ordering::Release);
    }

    /// The fleet-wide half of [`Fabric::heal`], run by one image per
    /// process: wait for respawned peers to dial back in (respawn mode),
    /// then a two-round fence — round 1 "stopped, stale traffic drained",
    /// local reset, round 2 "reset complete" — and finally commit the new
    /// generation.
    fn run_recovery_fence(&self) -> Result<(), RecoveryError> {
        let target = self.generation.load(Ordering::Acquire) + 1;
        let deadline = Instant::now() + self.cfg.io_timeout;
        if self.cfg.respawn {
            loop {
                let dead: Vec<usize> = (0..self.occ.len())
                    .filter(|&r| {
                        r != self.node_rank
                            && self.peer_state[r].load(Ordering::Acquire) == PEER_DEAD
                    })
                    .collect();
                if dead.is_empty() {
                    break;
                }
                if Instant::now() > deadline {
                    return Err(RecoveryError::HealFailed(format!(
                        "timed out waiting for respawned processes {dead:?} to rejoin"
                    )));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        self.recover_round(1, target, deadline)?;
        self.reset_local_state();
        self.recover_round(2, target, deadline)?;
        self.generation.store(target, Ordering::Release);
        self.recover_marks
            .lock()
            .retain(|(generation, _), _| *generation > target);
        Ok(())
    }

    // ---- data path helpers ---------------------------------------------

    fn seg_of(&self, img: usize, seg: SegmentId) -> Window {
        let slot = self.slots[img]
            .as_ref()
            .unwrap_or_else(|| panic!("image {img} is not hosted by this process"));
        let segs = slot.segs.read();
        segs.get(seg.0)
            .unwrap_or_else(|| panic!("image {img} has no {seg:?} (out of {})", segs.len()))
            .clone()
    }

    fn flag_cell(&self, img: usize, flag: FlagId) -> FlagCell {
        let slot = self.slots[img]
            .as_ref()
            .unwrap_or_else(|| panic!("image {img} is not hosted by this process"));
        let flags = slot.flags.read();
        flags
            .get(flag.0)
            .unwrap_or_else(|| panic!("image {img} has no {flag:?} (out of {})", flags.len()))
            .clone()
    }

    /// Local index of a hosted image within this process's slot/segment
    /// tables (bootstrap order).
    fn local_idx_of(&self, img: usize) -> usize {
        self.hosted
            .iter()
            .position(|&h| h.index() == img)
            .unwrap_or_else(|| panic!("image {img} is not hosted by this process"))
    }

    /// Shared-memory fast path toward `dst`: `Some(peer)` when the shm tier
    /// is on, `dst` lives in a *different process* whose segment this
    /// process has mapped. Per-destination with one carve-out: a window the
    /// owner spilled to its heap (directory full / arena exhausted) is
    /// reached over the wire even between mapped peers, so flag publication
    /// must consult [`Self::wire_debt_to`] before skipping the frame path.
    /// Dead peers are never serviced through shared memory: poison wins,
    /// loudly.
    fn shm_to(&self, me: ProcId, dst: ProcId) -> Option<Arc<ShmPeer>> {
        let rank = self.proc_of_image[dst.index()];
        let peer = self.shm_peers[rank].read().clone()?;
        if self.peer_state[rank].load(Ordering::Acquire) == PEER_DEAD {
            self.check_poison(me, "shared-memory op to a dead peer");
            panic!(
                "image {} shared-memory op to {}: peer is dead",
                me.index() + 1,
                self.peer_desc(rank)
            );
        }
        Some(peer)
    }

    /// True while any asynchronous wire data op (nonblocking put, AM
    /// batch) from this process to the process hosting `dst` is still
    /// unacked. A flag or AM batch applied through shared memory while
    /// this holds could overtake that payload at the destination — the
    /// caller must fall back to the frame path, whose per-connection send
    /// order restores the put_nb point-to-point contract. Once the debt is
    /// zero every prior wire put has been applied remotely (the ack is
    /// sent after the write lands), so the shm fast path is safe again.
    fn wire_debt_to(&self, dst: ProcId) -> bool {
        self.pending.lock().wire_nb_to[self.proc_of_image[dst.index()]] > 0
    }

    fn is_local(&self, img: ProcId) -> bool {
        self.proc_of_image[img.index()] == self.node_rank
    }

    #[inline]
    fn wall_now(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    #[inline]
    fn trace_now(&self) -> u64 {
        if self.cfg.tracer.enabled() {
            self.wall_now()
        } else {
            0
        }
    }

    /// Apply a flag add to a hosted image's cell (local fast path and
    /// ingress-delivered remote adds share this).
    fn apply_flag_add(&self, from: usize, target: usize, flag: FlagId, delta: u64, local: bool) {
        let old = self
            .flag_cell(target, flag)
            .cell()
            .fetch_add(delta, Ordering::Release);
        assert!(
            old.checked_add(delta).is_some(),
            "sync flag counter overflow: image {target} flag {} \
             (cumulative counter wrapped adding {delta})",
            flag.0
        );
        if self.cfg.tracer.enabled() {
            let t = self.trace_now();
            let _g = self.trace_sys_lock.lock();
            self.cfg.tracer.record_system(
                Event::instant(EventKind::FlagDeliver, t)
                    .a(from as u64)
                    .b(flag.0 as u64)
                    .c(t)
                    .d(target as u64)
                    .intra(local),
            );
        }
        if self.parked.load(Ordering::SeqCst) > 0 {
            let _g = self.wake_lock.lock();
            self.wake_cv.notify_all();
        }
    }

    /// Apply an active-message batch to a hosted image, in vector order.
    /// Shared by the local fast path and the ingress-delivered remote path.
    fn apply_am_ops(&self, from: usize, target: usize, ops: &[AmOp], local: bool) {
        for op in ops {
            match op {
                AmOp::Put { seg, off, data } => {
                    self.seg_of(target, *seg).write(*off, data);
                }
                AmOp::AmoAdd { seg, off, delta } => {
                    self.seg_of(target, *seg)
                        .as_atomic_u64(*off)
                        .fetch_add(*delta, Ordering::AcqRel);
                }
                AmOp::FlagAdd { flag, delta } | AmOp::PutFlag { flag, delta, .. } => {
                    if let AmOp::PutFlag { seg, off, data, .. } = op {
                        self.seg_of(target, *seg).write(*off, data);
                    }
                    self.apply_flag_add(from, target, *flag, *delta, local);
                }
            }
        }
    }

    /// A frame failed to decode (`InvalidData`): the connection's framing
    /// is broken — a protocol bug or wire corruption, not a peer death.
    /// Poison the whole fabric with the decode error and the tracer's
    /// recent-operation window so the failure is loud and diagnosable.
    fn malformed_frame(&self, peer: usize, e: &io::Error) {
        let mut msg = format!(
            "malformed frame from {}: {e} (protocol bug or wire corruption)",
            self.peer_desc(peer)
        );
        if self.cfg.tracer.enabled() {
            msg.push_str("\nrecent operations before the failure:\n");
            msg.push_str(&self.cfg.tracer.render_recent(5));
        }
        self.poison(&msg);
    }

    /// Write a response frame from an ingress thread; a failure here means
    /// the requester can never complete, so it poisons.
    fn send_response(&self, peer: usize, writer: &mut BufWriter<Stream>, frame: &Frame) {
        match write_frame(writer, frame) {
            Ok(n) => {
                self.stats.record_wire_tx(n);
                self.obs.wire_tx(peer, n);
            }
            Err(_) if self.stopping() || self.all_done.load(Ordering::Acquire) => {}
            Err(e) => {
                self.declare_dead(peer, &format!("response write failed: {e}"));
            }
        }
    }

    /// Serialize `frame` onto the egress connection to the process hosting
    /// `dst`. Returns `(queue_ns, hosting process rank)` — time spent
    /// waiting for the per-peer writer (the tracer's queueing component).
    fn send_request(&self, me: ProcId, dst: ProcId, frame: &Frame) -> (u64, usize) {
        let rank = self.proc_of_image[dst.index()];
        let e = self
            .egress_to(rank)
            .unwrap_or_else(|| panic!("no egress connection to process {rank}"));
        let q0 = Instant::now();
        let mut w = e.writer.lock();
        let queue_ns = q0.elapsed().as_nanos() as u64;
        match write_frame(&mut *w, frame) {
            Ok(n) => {
                self.stats.record_wire_tx(n);
                self.obs.wire_tx(rank, n);
            }
            Err(e) => {
                drop(w);
                self.declare_dead(rank, &format!("request write failed: {e}"));
                self.check_poison(me, "sending to a dead peer");
                panic!(
                    "image {} request write to {} failed: {e}",
                    me.index() + 1,
                    self.peer_desc(rank)
                );
            }
        }
        (queue_ns, rank)
    }

    fn new_cookie(&self) -> u64 {
        self.next_cookie.fetch_add(1, Ordering::Relaxed)
    }

    /// Register a blocking request under `cookie` (call *before* sending,
    /// so the response can never race the registration).
    fn register_sync(&self, cookie: u64) {
        self.pending
            .lock()
            .entries
            .insert(cookie, Pending::Sync(None));
    }

    /// Park until the response for `cookie` arrives; poisons (and panics)
    /// on fabric poison or `io_timeout` expiry.
    fn wait_reply(&self, me: ProcId, rank: usize, cookie: u64, doing: &str) -> Reply {
        let deadline = Instant::now() + self.cfg.io_timeout;
        let mut g = self.pending.lock();
        loop {
            if let Some(Pending::Sync(slot)) = g.entries.get_mut(&cookie) {
                if slot.is_some() {
                    let Some(Pending::Sync(Some(reply))) = g.entries.remove(&cookie) else {
                        unreachable!("entry type changed under the lock");
                    };
                    return reply;
                }
            }
            drop(g);
            self.check_poison(me, doing);
            if Instant::now() > deadline {
                self.declare_dead(
                    rank,
                    &format!("{doing} got no response within {:?}", self.cfg.io_timeout),
                );
                self.check_poison(me, doing);
                panic!(
                    "image {} {doing}: no response from {} within {:?}",
                    me.index() + 1,
                    self.peer_desc(rank),
                    self.cfg.io_timeout
                );
            }
            g = self.pending.lock();
            self.pending_cv.wait_for(&mut g, POLL);
        }
    }

    /// Fill in a response from a reader thread.
    fn complete(&self, cookie: u64, reply: Reply) {
        let mut g = self.pending.lock();
        match g.entries.get_mut(&cookie) {
            Some(Pending::Sync(slot)) => *slot = Some(reply),
            Some(Pending::Nb { img, rank }) => {
                let (img, rank) = (*img, *rank);
                g.entries.remove(&cookie);
                g.outstanding_nb[img] -= 1;
                g.wire_nb_to[rank] -= 1;
                self.stats.record_put_nb_complete();
            }
            Some(Pending::AmBatch { img, rank }) => {
                let (img, rank) = (*img, *rank);
                g.entries.remove(&cookie);
                g.outstanding_nb[img] -= 1;
                g.wire_nb_to[rank] -= 1;
            }
            // Late response after a timeout already poisoned: drop it.
            None => {}
        }
        self.pending_cv.notify_all();
    }

    /// Record a remote-op span with the socket queueing-vs-service split
    /// (`c` = writer-queue ns, `d` = service ns — wire + remote apply +
    /// response), mirroring the simulator's Put convention.
    #[allow(clippy::too_many_arguments)]
    fn trace_remote(
        &self,
        kind: EventKind,
        me: ProcId,
        peer: ProcId,
        t0: u64,
        bytes: u64,
        queue_ns: u64,
        service_ns: u64,
    ) {
        if !self.cfg.tracer.enabled() {
            return;
        }
        let t1 = self.trace_now();
        self.cfg.tracer.record(
            me.index(),
            Event::span(kind, t0, t1.saturating_sub(t0))
                .a(peer.index() as u64)
                .b(bytes)
                .c(queue_ns)
                .d(service_ns)
                .intra(false),
        );
    }

    /// Record a local (same-process) op span, like the thread fabric.
    fn trace_local(&self, kind: EventKind, me: ProcId, peer: ProcId, t0: u64, bytes: u64) {
        if !self.cfg.tracer.enabled() {
            return;
        }
        let t1 = self.trace_now();
        let ev = Event::span(kind, t0, t1.saturating_sub(t0))
            .a(peer.index() as u64)
            .b(bytes);
        self.cfg.tracer.record(
            me.index(),
            if me == peer {
                ev.self_target()
            } else {
                ev.intra(true)
            },
        );
    }
}

impl Fabric for SocketFabric {
    fn n_images(&self) -> usize {
        self.map.n_images()
    }

    fn image_map(&self) -> &ImageMap {
        &self.map
    }

    fn cost(&self) -> &CostParams {
        &self.cfg.cost
    }

    fn overheads(&self) -> &SoftwareOverheads {
        &self.cfg.overheads
    }

    fn stats(&self) -> &FabricStats {
        &self.stats
    }

    fn tracer(&self) -> &Tracer {
        &self.cfg.tracer
    }

    fn process_telemetry(
        &self,
        phase: TelemetryPhase,
        cause: Option<&str>,
    ) -> Option<NodeTelemetry> {
        Some(self.node_telemetry(phase, cause))
    }

    fn alloc_segment(&self, me: ProcId, bytes: usize) -> SegmentId {
        let slot = self.slots[me.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("alloc_segment: image {me:?} not hosted here"));
        let mut segs = slot.segs.write();
        let id = segs.len();
        // With the shm tier on, windows come from the shared arena so
        // same-host peers can address them directly. When the shared side
        // cannot hold one more (directory full, or the arena is exhausted
        // — see `SocketConfig::shm_bytes_per_image`), the window spills to
        // this process's heap: its directory entry stays unpublished, so
        // peers see `None` from `ShmPeer::window` and take the wire. The
        // shared directory is the single source of truth, so both sides
        // agree without any extra handshake.
        let w = match &self.shm {
            Some(s) => match s.alloc(self.local_idx_of(me.index()), id, bytes) {
                Ok(win) => Window::Shm(win),
                Err(_) => Window::Heap(Arc::new(SharedBytes::new(bytes))),
            },
            None => Window::Heap(Arc::new(SharedBytes::new(bytes))),
        };
        segs.push(w);
        SegmentId(id)
    }

    fn alloc_flags(&self, me: ProcId, count: usize) -> FlagId {
        let slot = self.slots[me.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("alloc_flags: image {me:?} not hosted here"));
        let mut flags = slot.flags.write();
        let id = flags.len();
        match &self.shm {
            Some(s) => {
                // The shared table is sized at segment creation; flags past
                // it fall back to heap cells reached over the wire. The
                // index alone decides the backing, so same-host peers agree
                // on which side of the boundary a flag lives without any
                // extra handshake (see `flag_add`/`am_deliver`).
                let local = self.local_idx_of(me.index());
                for k in 0..count {
                    if id + k < shm::MAX_FLAGS {
                        flags.push(FlagCell::Shm(s.flag(local, id + k)));
                    } else {
                        flags.push(FlagCell::Heap(Arc::new(CachePadded::new(AtomicU64::new(
                            0,
                        )))));
                    }
                }
            }
            None => {
                for _ in 0..count {
                    flags.push(FlagCell::Heap(Arc::new(CachePadded::new(AtomicU64::new(
                        0,
                    )))));
                }
            }
        }
        FlagId(id)
    }

    fn put(&self, me: ProcId, dst: ProcId, seg: SegmentId, offset: usize, bytes: &[u8]) {
        let t0 = self.trace_now();
        if self.is_local(dst) {
            if me != dst {
                self.stats.record_put(true, bytes.len());
            }
            self.seg_of(dst.index(), seg).write(offset, bytes);
            self.trace_local(EventKind::Put, me, dst, t0, bytes.len() as u64);
            return;
        }
        // An unpublished window (`None`) is a heap spill on the owner —
        // fall through and take the wire like a cross-node put.
        if let Some(w) = self
            .shm_to(me, dst)
            .and_then(|p| p.window(dst.index(), seg))
        {
            // memcpy into the peer's mapped window + a release fence: the
            // data is globally visible before any later flag/AMO the peer
            // could observe. No frame, no ack, nothing for `quiet` to drain.
            w.write(offset, bytes);
            fence(Ordering::Release);
            self.stats.record_shm_put(bytes.len());
            self.trace_local(EventKind::Put, me, dst, t0, bytes.len() as u64);
            return;
        }
        self.stats.record_put(false, bytes.len());
        let cookie = self.new_cookie();
        self.register_sync(cookie);
        let (queue_ns, rank) = self.send_request(
            me,
            dst,
            &Frame::Put {
                src: me.index() as u32,
                dst: dst.index() as u32,
                seg: seg.0 as u64,
                off: offset as u64,
                ack: cookie,
                data: bytes.to_vec(),
            },
        );
        let s0 = Instant::now();
        match self.wait_reply(me, rank, cookie, "remote put") {
            Reply::Ack => {}
            _ => panic!("put got a non-ack response"),
        }
        let service_ns = s0.elapsed().as_nanos() as u64;
        self.obs.put_ack(service_ns);
        self.trace_remote(
            EventKind::Put,
            me,
            dst,
            t0,
            bytes.len() as u64,
            queue_ns,
            service_ns,
        );
    }

    fn am_deliver(&self, me: ProcId, dst: ProcId, ops: &[AmOp]) {
        let t0 = self.trace_now();
        let wire: u64 = ops.iter().map(|op| op.wire_len() as u64).sum();
        if self.is_local(dst) {
            self.apply_am_ops(me.index(), dst.index(), ops, true);
            self.trace_local(EventKind::Put, me, dst, t0, wire);
            return;
        }
        if let Some(p) = self.shm_to(me, dst) {
            // Every op must be reachable through the shared mapping: a flag
            // past the shared table or a window the owner spilled to its
            // heap (directory full / arena exhausted) lives only on the
            // owner, and the whole batch must then travel as one wire frame
            // so its vector order is preserved.
            let all_shared = ops.iter().all(|op| match op {
                AmOp::Put { seg, .. } | AmOp::AmoAdd { seg, .. } => {
                    p.window(dst.index(), *seg).is_some()
                }
                AmOp::FlagAdd { flag, .. } => flag.0 < shm::MAX_FLAGS,
                AmOp::PutFlag { seg, flag, .. } => {
                    flag.0 < shm::MAX_FLAGS && p.window(dst.index(), *seg).is_some()
                }
            });
            // Windows only unpublish inside the recovery fence, when no
            // image issues traffic, so the lookups below cannot miss.
            let win = |seg: SegmentId| {
                p.window(dst.index(), seg)
                    .expect("window published at the batch check above")
            };
            // The debt check mirrors `flag_add`: a batch applied through
            // shared memory while a wire nb put to this peer is unacked
            // could publish its flags before that payload lands. Sent as a
            // frame instead, the batch queues behind the put on the shared
            // connection and vector order is preserved end to end.
            if all_shared && !self.wire_debt_to(dst) {
                // Apply the batch in vector order directly against the
                // peer's mapped segment — the same order the ingress thread
                // would use. Flag adds use release stores, so fused
                // put+flag visibility holds exactly as it does on the wire
                // path.
                for op in ops {
                    match op {
                        AmOp::Put { seg, off, data } => {
                            win(*seg).write(*off, data);
                            self.stats.record_shm_put(data.len());
                        }
                        AmOp::AmoAdd { seg, off, delta } => {
                            win(*seg)
                                .as_atomic_u64(*off)
                                .fetch_add(*delta, Ordering::AcqRel);
                            self.stats.record_shm_flag();
                        }
                        AmOp::FlagAdd { flag, delta } | AmOp::PutFlag { flag, delta, .. } => {
                            if let AmOp::PutFlag { seg, off, data, .. } = op {
                                win(*seg).write(*off, data);
                                self.stats.record_shm_put(data.len());
                            }
                            fence(Ordering::Release);
                            let old = p
                                .flag(dst.index(), *flag)
                                .cell()
                                .fetch_add(*delta, Ordering::Release);
                            assert!(
                                old.checked_add(*delta).is_some(),
                                "sync flag counter overflow: image {} flag {} \
                                 (cumulative counter wrapped adding {delta})",
                                dst.index(),
                                flag.0
                            );
                            self.stats.record_shm_flag();
                        }
                    }
                }
                fence(Ordering::Release);
                self.trace_local(EventKind::Put, me, dst, t0, wire);
                return;
            }
        }
        // One frame per batch, one ack cookie: the ack retires through the
        // sender's `outstanding_nb` debt, so `quiet` means every batched AM
        // has remotely completed — same completion contract as `put_nb`.
        let cookie = self.new_cookie();
        {
            let rank = self.proc_of_image[dst.index()];
            let mut g = self.pending.lock();
            g.entries.insert(
                cookie,
                Pending::AmBatch {
                    img: me.index(),
                    rank,
                },
            );
            g.outstanding_nb[me.index()] += 1;
            g.wire_nb_to[rank] += 1;
        }
        let (queue_ns, _rank) = self.send_request(
            me,
            dst,
            &Frame::AmBatch {
                src: me.index() as u32,
                dst: dst.index() as u32,
                ack: cookie,
                ops: ops.to_vec(),
            },
        );
        self.trace_remote(EventKind::Put, me, dst, t0, wire, queue_ns, 0);
    }

    fn put_nb(
        &self,
        me: ProcId,
        dst: ProcId,
        seg: SegmentId,
        offset: usize,
        bytes: &[u8],
    ) -> PutToken {
        let t0 = self.trace_now();
        if self.is_local(dst) {
            self.seg_of(dst.index(), seg).write(offset, bytes);
            if me != dst {
                self.stats.record_put_nb(true, bytes.len());
                self.stats.record_put_nb_complete();
            }
            self.trace_local(EventKind::PutNb, me, dst, t0, bytes.len() as u64);
            return PutToken::DONE;
        }
        if let Some(w) = self
            .shm_to(me, dst)
            .and_then(|p| p.window(dst.index(), seg))
        {
            // A shared-memory put completes at injection: count it through
            // both nb counters so the injected == completed invariant the
            // litmus suite checks holds across the mixed fabric.
            w.write(offset, bytes);
            fence(Ordering::Release);
            self.stats.record_shm_put(bytes.len());
            self.stats.puts_nb_injected.fetch_add(1, Ordering::Relaxed);
            self.stats.record_put_nb_complete();
            self.trace_local(EventKind::PutNb, me, dst, t0, bytes.len() as u64);
            return PutToken::DONE;
        }
        self.stats.record_put_nb(false, bytes.len());
        let cookie = self.new_cookie();
        {
            let rank = self.proc_of_image[dst.index()];
            let mut g = self.pending.lock();
            g.entries.insert(
                cookie,
                Pending::Nb {
                    img: me.index(),
                    rank,
                },
            );
            g.outstanding_nb[me.index()] += 1;
            g.wire_nb_to[rank] += 1;
        }
        let (queue_ns, _rank) = self.send_request(
            me,
            dst,
            &Frame::Put {
                src: me.index() as u32,
                dst: dst.index() as u32,
                seg: seg.0 as u64,
                off: offset as u64,
                ack: cookie,
                data: bytes.to_vec(),
            },
        );
        self.trace_remote(
            EventKind::PutNb,
            me,
            dst,
            t0,
            bytes.len() as u64,
            queue_ns,
            0,
        );
        // The token smuggles the ack cookie (never 0 for an in-flight
        // transfer — cookie allocation starts at 1); `put_test`/`put_wait`
        // resolve it against the pending table.
        PutToken { arrival_ns: cookie }
    }

    fn put_test(&self, _me: ProcId, token: PutToken) -> bool {
        token.arrival_ns == 0 || !self.pending.lock().entries.contains_key(&token.arrival_ns)
    }

    fn put_wait(&self, me: ProcId, token: PutToken) {
        if token.arrival_ns == 0 {
            return;
        }
        let deadline = Instant::now() + self.cfg.io_timeout;
        let mut g = self.pending.lock();
        while g.entries.contains_key(&token.arrival_ns) {
            drop(g);
            self.check_poison(me, "put_wait");
            if Instant::now() > deadline {
                let msg = format!(
                    "image {} put_wait: no ack within {:?}",
                    me.index() + 1,
                    self.cfg.io_timeout
                );
                self.poison(&msg);
                panic!("{msg}");
            }
            g = self.pending.lock();
            self.pending_cv.wait_for(&mut g, POLL);
        }
    }

    fn get(&self, me: ProcId, src: ProcId, seg: SegmentId, offset: usize, out: &mut [u8]) {
        let t0 = self.trace_now();
        if self.is_local(src) {
            if me != src {
                self.stats.record_get(true, out.len());
            }
            self.seg_of(src.index(), seg).read(offset, out);
            self.trace_local(EventKind::Get, me, src, t0, out.len() as u64);
            return;
        }
        if let Some(w) = self
            .shm_to(me, src)
            .and_then(|p| p.window(src.index(), seg))
        {
            fence(Ordering::Acquire);
            w.read(offset, out);
            self.stats.record_shm_get(out.len());
            self.trace_local(EventKind::Get, me, src, t0, out.len() as u64);
            return;
        }
        self.stats.record_get(false, out.len());
        let cookie = self.new_cookie();
        self.register_sync(cookie);
        let (queue_ns, rank) = self.send_request(
            me,
            src,
            &Frame::Get {
                src: me.index() as u32,
                dst: src.index() as u32,
                seg: seg.0 as u64,
                off: offset as u64,
                len: out.len() as u32,
                req: cookie,
            },
        );
        let s0 = Instant::now();
        match self.wait_reply(me, rank, cookie, "remote get") {
            Reply::Data(data) => {
                assert_eq!(data.len(), out.len(), "get response length mismatch");
                out.copy_from_slice(&data);
            }
            _ => panic!("get got a non-data response"),
        }
        self.trace_remote(
            EventKind::Get,
            me,
            src,
            t0,
            out.len() as u64,
            queue_ns,
            s0.elapsed().as_nanos() as u64,
        );
    }

    fn amo_fetch_add_u64(
        &self,
        me: ProcId,
        target: ProcId,
        seg: SegmentId,
        offset: usize,
        delta: u64,
    ) -> u64 {
        self.stats.amos.fetch_add(1, Ordering::Relaxed);
        let t0 = self.trace_now();
        if self.is_local(target) {
            let old = self
                .seg_of(target.index(), seg)
                .as_atomic_u64(offset)
                .fetch_add(delta, Ordering::AcqRel);
            self.trace_local(EventKind::AmoFetchAdd, me, target, t0, offset as u64);
            return old;
        }
        if let Some(w) = self
            .shm_to(me, target)
            .and_then(|p| p.window(target.index(), seg))
        {
            // Same physical atomic the owner (and every other mapper) uses,
            // so atomicity holds even when some images reach it through the
            // wire and others through shared memory.
            let old = w.as_atomic_u64(offset).fetch_add(delta, Ordering::AcqRel);
            self.stats.record_shm_flag();
            self.trace_local(EventKind::AmoFetchAdd, me, target, t0, offset as u64);
            return old;
        }
        let cookie = self.new_cookie();
        self.register_sync(cookie);
        let (queue_ns, rank) = self.send_request(
            me,
            target,
            &Frame::AmoFadd {
                src: me.index() as u32,
                dst: target.index() as u32,
                seg: seg.0 as u64,
                off: offset as u64,
                delta,
                req: cookie,
            },
        );
        let s0 = Instant::now();
        let old = match self.wait_reply(me, rank, cookie, "remote fetch-add") {
            Reply::Val(v) => v,
            _ => panic!("AMO got a non-value response"),
        };
        self.trace_remote(
            EventKind::AmoFetchAdd,
            me,
            target,
            t0,
            offset as u64,
            queue_ns,
            s0.elapsed().as_nanos() as u64,
        );
        old
    }

    fn amo_cas_u64(
        &self,
        me: ProcId,
        target: ProcId,
        seg: SegmentId,
        offset: usize,
        expected: u64,
        new: u64,
    ) -> u64 {
        self.stats.amos.fetch_add(1, Ordering::Relaxed);
        let t0 = self.trace_now();
        if self.is_local(target) {
            let old = match self
                .seg_of(target.index(), seg)
                .as_atomic_u64(offset)
                .compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(v) | Err(v) => v,
            };
            self.trace_local(EventKind::AmoCas, me, target, t0, offset as u64);
            return old;
        }
        if let Some(w) = self
            .shm_to(me, target)
            .and_then(|p| p.window(target.index(), seg))
        {
            let old = match w.as_atomic_u64(offset).compare_exchange(
                expected,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(v) | Err(v) => v,
            };
            self.stats.record_shm_flag();
            self.trace_local(EventKind::AmoCas, me, target, t0, offset as u64);
            return old;
        }
        let cookie = self.new_cookie();
        self.register_sync(cookie);
        let (queue_ns, rank) = self.send_request(
            me,
            target,
            &Frame::AmoCas {
                src: me.index() as u32,
                dst: target.index() as u32,
                seg: seg.0 as u64,
                off: offset as u64,
                expected,
                new,
                req: cookie,
            },
        );
        let s0 = Instant::now();
        let old = match self.wait_reply(me, rank, cookie, "remote compare-and-swap") {
            Reply::Val(v) => v,
            _ => panic!("AMO got a non-value response"),
        };
        self.trace_remote(
            EventKind::AmoCas,
            me,
            target,
            t0,
            offset as u64,
            queue_ns,
            s0.elapsed().as_nanos() as u64,
        );
        old
    }

    fn flag_add(&self, me: ProcId, target: ProcId, flag: FlagId, delta: u64) {
        let t0 = self.trace_now();
        if self.is_local(target) {
            if me != target {
                self.stats.record_flag(true);
            }
            self.apply_flag_add(me.index(), target.index(), flag, delta, true);
            if self.cfg.tracer.enabled() {
                let ev = Event::instant(EventKind::FlagAdd, t0)
                    .a(target.index() as u64)
                    .b(flag.0 as u64)
                    .c(delta)
                    .d(self.trace_now());
                self.cfg.tracer.record(
                    me.index(),
                    if me == target {
                        ev.self_target()
                    } else {
                        ev.intra(true)
                    },
                );
            }
            return;
        }
        // Flags past the shared table are heap cells on the owner, reached
        // only over the wire (the alloc side uses the same index rule).
        // With nb wire debt outstanding toward this peer (a put into a
        // spilled window still in flight), the shared cell would publish
        // before that payload applies — take the frame path instead, whose
        // send order restores the put_nb contract.
        if flag.0 < shm::MAX_FLAGS {
            if let Some(p) = self
                .shm_to(me, target)
                .filter(|_| !self.wire_debt_to(target))
            {
                // Release on the shared cell publishes every prior shm put to
                // this peer; the waiter's acquire load pairs with it. The
                // waiter's parked phase is a bounded (200µs) poll, so no
                // cross-process notification is needed.
                let old = p
                    .flag(target.index(), flag)
                    .cell()
                    .fetch_add(delta, Ordering::Release);
                assert!(
                    old.checked_add(delta).is_some(),
                    "sync flag counter overflow: image {} flag {} \
                     (cumulative counter wrapped adding {delta})",
                    target.index(),
                    flag.0
                );
                self.stats.record_shm_flag();
                if self.cfg.tracer.enabled() {
                    self.cfg.tracer.record(
                        me.index(),
                        Event::instant(EventKind::FlagAdd, t0)
                            .a(target.index() as u64)
                            .b(flag.0 as u64)
                            .c(delta)
                            .d(self.trace_now())
                            .intra(true),
                    );
                }
                return;
            }
        }
        self.stats.record_flag(false);
        // Fire-and-forget: ordering with prior puts to the same target comes
        // from the shared per-peer connection (frames apply in send order).
        let (_queue_ns, _rank) = self.send_request(
            me,
            target,
            &Frame::FlagAdd {
                src: me.index() as u32,
                dst: target.index() as u32,
                flag: flag.0 as u64,
                delta,
            },
        );
        if self.cfg.tracer.enabled() {
            self.cfg.tracer.record(
                me.index(),
                Event::instant(EventKind::FlagAdd, t0)
                    .a(target.index() as u64)
                    .b(flag.0 as u64)
                    .c(delta)
                    .d(self.trace_now())
                    .intra(false),
            );
        }
    }

    fn flag_wait_ge(&self, me: ProcId, flag: FlagId, at_least: u64) {
        self.stats.flag_waits.fetch_add(1, Ordering::Relaxed);
        let t0 = self.trace_now();
        let deadline = Instant::now() + self.cfg.flag_wait_timeout;
        let cell_owner = self.flag_cell(me.index(), flag);
        let cell = cell_owner.cell();
        let backoff = Backoff::new();
        loop {
            if cell.load(Ordering::Acquire) >= at_least {
                if self.cfg.tracer.enabled() {
                    let t1 = self.trace_now();
                    self.cfg.tracer.record(
                        me.index(),
                        Event::span(EventKind::FlagWait, t0, t1.saturating_sub(t0))
                            .a(flag.0 as u64)
                            .b(at_least),
                    );
                }
                return;
            }
            self.check_poison(me, "flag wait");
            if Instant::now() > deadline {
                let mut msg = format!(
                    "image {} flag wait timed out after {:?} ({flag:?} = {} < {at_least})",
                    me.index() + 1,
                    self.cfg.flag_wait_timeout,
                    cell.load(Ordering::Acquire),
                );
                if self.cfg.tracer.enabled() {
                    msg.push_str("\nrecent operations before the failure:\n");
                    msg.push_str(&self.cfg.tracer.render_recent(5));
                }
                self.poison(&msg);
                panic!("{msg}");
            }
            if backoff.is_completed() {
                self.parked.fetch_add(1, Ordering::SeqCst);
                let mut g = self.wake_lock.lock();
                if cell.load(Ordering::Acquire) < at_least
                    && !self.poison_flag.load(Ordering::Acquire)
                {
                    self.wake_cv.wait_for(&mut g, Duration::from_micros(200));
                }
                drop(g);
                self.parked.fetch_sub(1, Ordering::SeqCst);
            } else {
                backoff.snooze();
            }
        }
    }

    fn flag_read(&self, me: ProcId, flag: FlagId) -> u64 {
        self.flag_cell(me.index(), flag)
            .cell()
            .load(Ordering::Acquire)
    }

    fn quiet(&self, me: ProcId) {
        let deadline = Instant::now() + self.cfg.io_timeout;
        let mut g = self.pending.lock();
        while g.outstanding_nb[me.index()] > 0 {
            drop(g);
            self.check_poison(me, "quiet");
            if Instant::now() > deadline {
                let msg = format!(
                    "image {} quiet: outstanding puts unacked after {:?}",
                    me.index() + 1,
                    self.cfg.io_timeout
                );
                self.poison(&msg);
                panic!("{msg}");
            }
            g = self.pending.lock();
            self.pending_cv.wait_for(&mut g, POLL);
        }
        drop(g);
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    fn compute(&self, _me: ProcId, _ns: u64) {
        // Real computation takes real wall time; nothing to account.
    }

    fn now_ns(&self, _me: ProcId) -> u64 {
        self.wall_now()
    }

    fn image_done(&self, _me: ProcId) {
        let done = self.done_count.fetch_add(1, Ordering::AcqRel) + 1;
        if done == self.hosted.len() {
            self.all_done.store(true, Ordering::Release);
            for rank in 0..self.egress.len() {
                if let Some(e) = self.egress_to(rank) {
                    let mut w = e.writer.lock();
                    if let Ok(n) = write_frame(
                        &mut *w,
                        &Frame::Bye {
                            node: self.node_rank as u32,
                        },
                    ) {
                        self.stats.record_wire_tx(n);
                        self.obs.wire_tx(rank, n);
                    }
                }
            }
        }
    }

    fn health(&self) -> Result<(), RecoveryError> {
        if self.poison_flag.load(Ordering::Acquire) {
            let msg = self.poisoned.lock().clone().unwrap_or_default();
            return Err(RecoveryError::Poisoned(msg));
        }
        Ok(())
    }

    fn alive_images(&self) -> Vec<ProcId> {
        (0..self.map.n_images())
            .map(ProcId)
            .filter(|img| {
                let rank = self.proc_of_image[img.index()];
                rank == self.node_rank || self.peer_state[rank].load(Ordering::Acquire) != PEER_DEAD
            })
            .collect()
    }

    fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    fn heal(&self, _me: ProcId) -> Result<(), RecoveryError> {
        // Process-local rendezvous: the fence must run exactly once per
        // round, after every hosted image has stopped issuing traffic.
        // The last hosted image to arrive leads; the rest park here.
        // Followers get twice the fence budget: the leader's own deadline
        // starts once it begins waiting for the respawned peer.
        let wait_deadline = Instant::now() + self.cfg.io_timeout * 2;
        let mut g = self.heal.lock();
        let my_round = g.round;
        g.waiting += 1;
        if g.waiting < self.hosted.len() {
            while g.round == my_round {
                let now = Instant::now();
                if now >= wait_deadline {
                    g.waiting = g.waiting.saturating_sub(1);
                    return Err(RecoveryError::HealFailed(
                        "timed out waiting for the recovery fence leader".into(),
                    ));
                }
                self.heal_cv.wait_for(&mut g, wait_deadline - now);
            }
            match &g.failed {
                Some(msg) => Err(RecoveryError::HealFailed(msg.clone())),
                None => Ok(()),
            }
        } else {
            g.waiting = 0;
            drop(g);
            let res = self.run_recovery_fence();
            let mut g = self.heal.lock();
            g.round += 1;
            g.failed = res.as_ref().err().map(|e| e.to_string());
            self.heal_cv.notify_all();
            res
        }
    }

    fn poison(&self, msg: &str) {
        {
            let mut p = self.poisoned.lock();
            if p.is_none() {
                *p = Some(msg.to_string());
            }
        }
        self.poison_flag.store(true, Ordering::Release);
        {
            let _g = self.wake_lock.lock();
            self.wake_cv.notify_all();
        }
        {
            let _g = self.pending.lock();
            self.pending_cv.notify_all();
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// In-process fleet helpers for tests and benches: build N `SocketFabric`s
/// (one per occupied node) inside one OS process, talking over real
/// sockets, with an inline coordinator.
pub mod testing {
    use super::*;

    /// Stand up a full fleet in-process: an inline coordinator plus one
    /// [`SocketFabric::join`] per occupied node of `map`. Returns the
    /// fabrics in process-rank order (coordinator connections are dropped —
    /// tests don't report results).
    pub fn fleet(map: &ImageMap, cfg: &SocketConfig) -> Vec<Arc<SocketFabric>> {
        let n_procs = (0..map.machine().nodes)
            .map(NodeId)
            .filter(|n| !map.images_on_node(*n).is_empty())
            .count();
        fleet_with(map, &vec![cfg.clone(); n_procs])
    }

    /// [`fleet`] with one [`SocketConfig`] per process rank — the way to
    /// build a *mixed* fleet where some processes advertise a shared
    /// segment and others stay pure-wire, so some ordered pairs run over
    /// the shm tier and others over frames in the very same run.
    pub fn fleet_with(map: &ImageMap, cfgs: &[SocketConfig]) -> Vec<Arc<SocketFabric>> {
        let n_procs = (0..map.machine().nodes)
            .map(NodeId)
            .filter(|n| !map.images_on_node(*n).is_empty())
            .count();
        assert_eq!(
            cfgs.len(),
            n_procs,
            "fleet_with needs exactly one config per occupied node"
        );
        let listener = Listener::bind(cfgs[0].transport).expect("bind coordinator");
        let coord_addr = listener.local_addr().expect("coordinator addr");
        let coord = std::thread::spawn(move || {
            let mut conns = Vec::new();
            let mut addrs = vec![String::new(); n_procs];
            for _ in 0..n_procs {
                let s = listener.accept().expect("coordinator accept");
                let mut r = BufReader::new(s.try_clone().expect("clone"));
                match read_frame(&mut r).expect("coordinator read") {
                    (Frame::Hello { node, addr, magic }, _) => {
                        assert_eq!(magic, WIRE_MAGIC);
                        addrs[node as usize] = addr;
                        conns.push(s);
                    }
                    (other, _) => panic!("expected Hello, got {other:?}"),
                }
            }
            for mut s in conns {
                write_frame(
                    &mut s,
                    &Frame::Peers {
                        addrs: addrs.clone(),
                    },
                )
                .expect("coordinator send peers");
            }
        });
        let joins: Vec<_> = (0..n_procs)
            .map(|rank| {
                let map = map.clone();
                let cfg = cfgs[rank].clone();
                let coord_addr = coord_addr.clone();
                std::thread::spawn(move || {
                    SocketFabric::join(map, rank, &coord_addr, cfg)
                        .expect("join fleet")
                        .0
                })
            })
            .collect();
        let fabrics: Vec<_> = joins.into_iter().map(|j| j.join().expect("join")).collect();
        coord.join().expect("coordinator");
        fabrics
    }

    /// Run `body` as one thread per hosted image on every fabric of the
    /// fleet, join them all, shut the fleet down, and re-raise the first
    /// image panic (after poisoning, so no survivor hangs).
    pub fn run_fleet<F>(fabrics: &[Arc<SocketFabric>], body: F)
    where
        F: Fn(Arc<SocketFabric>, ProcId) + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        let mut handles = Vec::new();
        for f in fabrics {
            for img in f.hosted().to_vec() {
                let f = f.clone();
                let body = body.clone();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("caf-img-{}", img.index()))
                        .spawn(move || body(f, img))
                        .expect("spawn image"),
                );
            }
        }
        let mut first_panic = None;
        for h in handles {
            if let Err(p) = h.join() {
                if first_panic.is_none() {
                    for f in fabrics {
                        f.poison("an image thread panicked");
                    }
                    first_panic = Some(p);
                }
            }
        }
        for f in fabrics {
            f.shutdown();
        }
        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::{fleet, run_fleet};
    use super::*;
    use caf_topology::{presets, Placement};

    const BSEG: SegmentId = crate::bootstrap::SEG;
    const SPARE_FLAG: FlagId = FlagId(2);
    const SPARE_FLAG2: FlagId = FlagId(3);

    fn map(nodes: usize, cores: usize, images: usize) -> ImageMap {
        ImageMap::new(presets::mini(nodes, cores), images, &Placement::Packed)
    }

    fn quick_cfg() -> SocketConfig {
        SocketConfig {
            io_timeout: Duration::from_secs(5),
            flag_wait_timeout: Duration::from_secs(5),
            ..SocketConfig::default()
        }
    }

    #[test]
    fn cross_process_put_flag_get_roundtrip() {
        // 2 nodes × 2 cores, 4 images: image 0 (process 0) writes to image
        // 2 (process 1), flags it, and waits for an ack flag — the
        // put-then-flag visibility contract over a real socket.
        let fabrics = fleet(&map(2, 2, 4), &quick_cfg());
        assert_eq!(fabrics.len(), 2);
        run_fleet(&fabrics, |f, me| {
            for round in 1..=20u64 {
                if me == ProcId(0) {
                    f.put(me, ProcId(2), BSEG, 0, &round.to_ne_bytes());
                    f.flag_add(me, ProcId(2), SPARE_FLAG, 1);
                    f.flag_wait_ge(me, SPARE_FLAG2, round);
                } else if me == ProcId(2) {
                    f.flag_wait_ge(me, SPARE_FLAG, round);
                    let mut out = [0u8; 8];
                    f.get(me, me, BSEG, 0, &mut out);
                    assert_eq!(u64::from_ne_bytes(out), round, "round {round}");
                    f.flag_add(me, ProcId(0), SPARE_FLAG2, 1);
                }
            }
            f.image_done(me);
        });
    }

    #[test]
    fn remote_get_reads_what_remote_put_wrote() {
        let fabrics = fleet(&map(2, 1, 2), &quick_cfg());
        run_fleet(&fabrics, |f, me| {
            if me == ProcId(0) {
                let payload: Vec<u8> = (0..48).collect();
                f.put(me, ProcId(1), BSEG, 8, &payload);
                // Blocking put is remotely complete on return: a get must
                // observe it without any flag synchronization.
                let mut out = vec![0u8; 48];
                f.get(me, ProcId(1), BSEG, 8, &mut out);
                assert_eq!(out, payload);
            }
            f.image_done(me);
        });
    }

    #[test]
    fn remote_amos_are_atomic_across_processes() {
        let n = 4;
        let fabrics = fleet(&map(2, 2, n), &quick_cfg());
        run_fleet(&fabrics, |f, me| {
            for _ in 0..250 {
                f.amo_fetch_add_u64(me, ProcId(0), BSEG, 0, 1);
            }
            f.image_done(me);
        });
        // All fabrics still alive (run_fleet shut them down); check the
        // counter through the hosting fabric's local path.
        let mut out = [0u8; 8];
        fabrics[0].seg_of(0, BSEG).read(0, &mut out);
        assert_eq!(u64::from_ne_bytes(out), (n * 250) as u64);
    }

    #[test]
    fn remote_cas_swaps_exactly_once() {
        let fabrics = fleet(&map(2, 1, 2), &quick_cfg());
        run_fleet(&fabrics, |f, me| {
            if me == ProcId(1) {
                let old = f.amo_cas_u64(me, ProcId(0), BSEG, 8, 0, 99);
                assert_eq!(old, 0);
                let old = f.amo_cas_u64(me, ProcId(0), BSEG, 8, 0, 77);
                assert_eq!(old, 99, "second CAS must see the first swap");
            }
            f.image_done(me);
        });
    }

    #[test]
    fn put_nb_token_resolves_and_quiet_drains() {
        let fabrics = fleet(&map(2, 1, 2), &quick_cfg());
        run_fleet(&fabrics, |f, me| {
            if me == ProcId(0) {
                let tokens: Vec<PutToken> = (0..16u64)
                    .map(|i| f.put_nb(me, ProcId(1), BSEG, (i * 8) as usize, &i.to_ne_bytes()))
                    .collect();
                f.quiet(me);
                for t in tokens {
                    assert!(f.put_test(me, t), "token unresolved after quiet");
                    f.put_wait(me, t); // must be a no-op now
                }
                let mut out = [0u8; 8];
                f.get(me, ProcId(1), BSEG, 15 * 8, &mut out);
                assert_eq!(u64::from_ne_bytes(out), 15);
            }
            f.image_done(me);
        });
    }

    #[test]
    fn wire_counters_count_remote_traffic_only() {
        // Pin shm off: this test asserts wire frame/byte counts that the
        // shared-memory fast path would (correctly) bypass.
        let cfg = SocketConfig {
            shm: false,
            ..quick_cfg()
        };
        let fabrics = fleet(&map(2, 1, 2), &cfg);
        let f0 = fabrics[0].clone();
        run_fleet(&fabrics, |f, me| {
            if me == ProcId(0) {
                f.put(me, ProcId(1), BSEG, 0, &[1u8; 32]); // remote: framed
                f.put(me, ProcId(0), BSEG, 0, &[1u8; 32]); // local: no wire
            }
            f.image_done(me);
        });
        let s = f0.stats().snapshot();
        assert!(s.wire_frames_tx >= 2, "Open + Put at minimum: {s:?}");
        assert!(
            s.wire_bytes_tx > 32,
            "frame overhead must appear in wire bytes"
        );
        assert!(s.wire_frames_rx >= 1, "put ack must be counted: {s:?}");
        assert_eq!(s.puts_intra, 0, "self-put is uncounted, local framing off");
    }

    #[test]
    fn control_barrier_over_sockets() {
        let fabrics = fleet(&map(2, 2, 4), &quick_cfg());
        run_fleet(&fabrics, |f, me| {
            let mut epoch = 0u64;
            for _ in 0..10 {
                crate::bootstrap::control_barrier(&*f, me, &mut epoch);
            }
            f.image_done(me);
        });
    }

    #[test]
    fn severed_peer_is_reported_dead_by_rank() {
        // Process 1 (images 3,4 in 1-based terms) goes silent mid-run; the
        // survivor's wait must fail loudly, naming the dead images, within
        // the configured timeout — no hang.
        let cfg = SocketConfig {
            peer_timeout: Duration::from_millis(400),
            heartbeat_period: Duration::from_millis(50),
            io_timeout: Duration::from_secs(5),
            flag_wait_timeout: Duration::from_secs(5),
            ..SocketConfig::default()
        };
        let fabrics = fleet(&map(2, 2, 4), &cfg);
        let victim = fabrics[1].clone();
        let t0 = Instant::now();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_fleet(&fabrics, move |f, me| {
                if me == ProcId(0) {
                    // Kill process 1 after the fleet is definitely running
                    // and while its images are still mid-"collective" (no
                    // graceful Bye must escape). The delay spans several
                    // heartbeat periods so the victim's counter snapshots
                    // reach the survivor before it goes silent.
                    std::thread::sleep(Duration::from_millis(200));
                    victim.sever();
                }
                if me.index() < 2 {
                    // Survivors (process 0) wait on a flag that the dead
                    // process will never send.
                    f.flag_wait_ge(me, SPARE_FLAG, 1);
                } else {
                    // Victim images are busy until well past the sever, so
                    // their image_done's Bye hits the closed connections.
                    std::thread::sleep(Duration::from_millis(300));
                }
                f.image_done(me);
            });
        }))
        .unwrap_err();
        let elapsed = t0.elapsed();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".into());
        assert!(
            msg.contains("images 3,4"),
            "failure must name the dead images: {msg}"
        );
        assert!(
            msg.contains("last-known stats (from its final heartbeat)"),
            "death report must carry the dead node's own counters: {msg}"
        );
        assert!(
            elapsed < Duration::from_secs(5),
            "death detection took {elapsed:?}"
        );
    }

    #[test]
    fn telemetry_snapshot_covers_wire_and_roundtrips() {
        // Pin shm off: asserts wire roundtrip observations per peer.
        let cfg = SocketConfig {
            shm: false,
            ..quick_cfg()
        };
        let fabrics = fleet(&map(2, 1, 2), &cfg);
        let (f0, f1) = (fabrics[0].clone(), fabrics[1].clone());
        run_fleet(&fabrics, |f, me| {
            if me == ProcId(0) {
                f.put(me, ProcId(1), BSEG, 0, &[7u8; 64]);
                let mut out = [0u8; 8];
                f.get(me, ProcId(1), BSEG, 0, &mut out);
            }
            f.image_done(me);
        });
        let t = f0.node_telemetry(TelemetryPhase::Final, None);
        assert_eq!(t.node, 0);
        assert_eq!(t.images, vec![0]);
        assert_eq!(t.obs.peers.len(), 2);
        let to_peer = t.obs.peers[1];
        assert!(to_peer.frames_tx >= 3, "Open + Put + Get: {to_peer:?}");
        assert!(to_peer.frames_rx >= 2, "PutAck + GetResp: {to_peer:?}");
        assert!(to_peer.bytes_tx > 64, "frame overhead counted: {to_peer:?}");
        assert_eq!(
            t.obs.peers[0],
            PeerWireSnapshot::default(),
            "own-rank row stays zero"
        );
        assert_eq!(t.obs.put_ack.count, 1, "one blocking remote put sampled");
        assert!(t.obs.put_ack.percentile_ns(50.0) > 0);
        // The blob survives its wire codec, and the receiving side of the
        // fleet also saw traffic from process 0.
        let back = NodeTelemetry::decode(&t.encode()).expect("decode");
        assert_eq!(back, t);
        let t1 = f1.node_telemetry(TelemetryPhase::FlightRecorder, Some("drill"));
        assert_eq!(t1.cause, "drill");
        assert!(t1.obs.peers[0].frames_rx >= 3, "{:?}", t1.obs.peers[0]);
    }

    #[test]
    fn heartbeats_deliver_peer_stats_snapshots() {
        let cfg = SocketConfig {
            heartbeat_period: Duration::from_millis(25),
            // Pin shm off: asserts the peer's put shows up in the
            // heartbeat-carried wire stats snapshot.
            shm: false,
            ..quick_cfg()
        };
        let fabrics = fleet(&map(2, 1, 2), &cfg);
        let f0 = fabrics[0].clone();
        run_fleet(&fabrics, |f, me| {
            if me == ProcId(1) {
                f.put(me, ProcId(0), BSEG, 0, &[1u8; 16]);
                // Outlive a few heartbeat periods so snapshots flow.
                std::thread::sleep(Duration::from_millis(120));
            }
            f.image_done(me);
        });
        let s = f0.last_peer_stats(1).expect("peer 1 heartbeat stats");
        assert!(s.puts_inter >= 1, "peer's own put must be in its snapshot");
        assert!(f0.last_peer_stats(0).is_none(), "no heartbeat to self");
        let t = f0.node_telemetry(TelemetryPhase::Final, None);
        assert!(
            t.obs.heartbeats[1].count >= 1,
            "heartbeat jitter watch saw arrivals: {:?}",
            t.obs.heartbeats[1]
        );
    }

    #[test]
    fn single_process_fleet_needs_no_sockets() {
        let fabrics = fleet(&map(1, 4, 4), &quick_cfg());
        assert_eq!(fabrics.len(), 1);
        run_fleet(&fabrics, |f, me| {
            let mut epoch = 0u64;
            crate::bootstrap::control_barrier(&*f, me, &mut epoch);
            f.put(me, ProcId((me.index() + 1) % 4), BSEG, 0, &[9u8; 8]);
            crate::bootstrap::control_barrier(&*f, me, &mut epoch);
            f.image_done(me);
        });
    }

    #[test]
    fn config_from_env_parses_overrides() {
        // Serialized by env-var name uniqueness; runs in-process only.
        std::env::set_var("CAF_SOCKET_PEER_TIMEOUT_MS", "1234");
        let cfg = SocketConfig::from_env();
        assert_eq!(cfg.peer_timeout, Duration::from_millis(1234));
        std::env::remove_var("CAF_SOCKET_PEER_TIMEOUT_MS");
    }

    /// Full rejoin cycle inside one OS process: a 2-process fleet loses
    /// process 1 abruptly (no Bye), a new incarnation joins with a
    /// `Rejoin` handshake at generation 1, both sides run the recovery
    /// fence, and the data plane works again on the healed fabric.
    #[test]
    fn respawned_process_rejoins_and_fleet_heals() {
        let cfg = SocketConfig {
            respawn: true,
            heartbeat_period: Duration::from_millis(25),
            peer_timeout: Duration::from_millis(400),
            ..quick_cfg()
        };
        let m = map(2, 1, 2);

        // Inline coordinator that, unlike `testing::fleet`'s, stays up for
        // one extra Hello — the respawned incarnation re-registering.
        let listener = Listener::bind(cfg.transport).expect("bind coordinator");
        let coord_addr = listener.local_addr().expect("coordinator addr");
        let coord = std::thread::spawn(move || {
            let mut conns = Vec::new();
            let mut addrs = vec![String::new(); 2];
            for _ in 0..2 {
                let s = listener.accept().expect("accept");
                let mut r = BufReader::new(s.try_clone().expect("clone"));
                match read_frame(&mut r).expect("read hello") {
                    (Frame::Hello { node, addr, magic }, _) => {
                        assert_eq!(magic, WIRE_MAGIC);
                        addrs[node as usize] = addr;
                        conns.push(s);
                    }
                    (other, _) => panic!("expected Hello, got {other:?}"),
                }
            }
            for s in conns.iter_mut() {
                write_frame(
                    s,
                    &Frame::Peers {
                        addrs: addrs.clone(),
                    },
                )
                .expect("send peers");
            }
            // The respawned rank 1 re-registers with a fresh address.
            let mut s = listener.accept().expect("accept rejoin");
            let mut r = BufReader::new(s.try_clone().expect("clone"));
            match read_frame(&mut r).expect("read rejoin hello") {
                (Frame::Hello { node, addr, .. }, _) => {
                    assert_eq!(node, 1, "only rank 1 was respawned");
                    addrs[1] = addr;
                }
                (other, _) => panic!("expected rejoin Hello, got {other:?}"),
            }
            write_frame(&mut s, &Frame::Peers { addrs }).expect("send rejoin peers");
        });

        let join = |rank: usize, cfg: SocketConfig| {
            let m = m.clone();
            let coord_addr = coord_addr.clone();
            std::thread::spawn(move || {
                SocketFabric::join(m, rank, &coord_addr, cfg)
                    .expect("join fleet")
                    .0
            })
        };
        let (j0, j1) = (join(0, cfg.clone()), join(1, cfg.clone()));
        let (f0, f1_old) = (j0.join().unwrap(), j1.join().unwrap());

        // Image 0's whole life, concurrent with the kill + respawn below:
        // normal traffic, observe the poison, heal, traffic again.
        let f = f0.clone();
        let img0 = std::thread::spawn(move || {
            let me = ProcId(0);
            for round in 1..=2u64 {
                f.put(me, ProcId(1), BSEG, 0, &round.to_ne_bytes());
                f.flag_add(me, ProcId(1), SPARE_FLAG, 1);
                f.flag_wait_ge(me, SPARE_FLAG2, round);
            }
            let t0 = Instant::now();
            while f.health().is_ok() {
                assert!(
                    t0.elapsed() < Duration::from_secs(5),
                    "peer death was never observed"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
            // (No alive_images assertion here: the in-process respawn can
            // complete its rejoin before this thread polls, racing the
            // shrunken view away.)
            f.heal(me).expect("heal after rejoin");
            assert_eq!(f.generation(), 1);
            assert_eq!(f.alive_images().len(), 2, "rejoiner counts again");
            f.health().expect("poison cleared by the fence");
            // Data plane over the replaced connection pair, on the reset
            // (zeroed) flags and bootstrap segment.
            f.put(me, ProcId(1), BSEG, 0, &0xFEEDu64.to_ne_bytes());
            f.flag_add(me, ProcId(1), SPARE_FLAG, 1);
            f.flag_wait_ge(me, SPARE_FLAG2, 1);
            f.image_done(me);
        });

        // Old incarnation of process 1: answer the two rounds, then die
        // without a Bye (thread returns, fabric torn down abruptly).
        {
            let f = f1_old.clone();
            let me = ProcId(1);
            for round in 1..=2u64 {
                f.flag_wait_ge(me, SPARE_FLAG, round);
                let mut out = [0u8; 8];
                f.get(me, me, BSEG, 0, &mut out);
                assert_eq!(u64::from_ne_bytes(out), round);
                f.flag_add(me, ProcId(0), SPARE_FLAG2, 1);
            }
            f1_old.shutdown();
            drop(f1_old);
        }

        // Respawned incarnation: generation 1, fresh listener + Rejoin
        // handshake toward the survivor.
        let f1_new = join(
            1,
            SocketConfig {
                rejoin_generation: Some(1),
                ..cfg
            },
        )
        .join()
        .unwrap();
        assert_eq!(f1_new.generation(), 0, "starts one below its target");
        let f = f1_new.clone();
        let img1 = std::thread::spawn(move || {
            let me = ProcId(1);
            f.heal(me).expect("rejoiner heal");
            assert_eq!(f.generation(), 1);
            f.flag_wait_ge(me, SPARE_FLAG, 1);
            let mut out = [0u8; 8];
            f.get(me, me, BSEG, 0, &mut out);
            assert_eq!(u64::from_ne_bytes(out), 0xFEED);
            f.flag_add(me, ProcId(0), SPARE_FLAG2, 1);
            f.image_done(me);
        });

        img0.join().expect("image 0");
        img1.join().expect("image 1 (respawned)");
        coord.join().expect("coordinator");
        f0.shutdown();
        f1_new.shutdown();
    }

    /// With the shm tier on (the unix default), cross-process data ops on
    /// one host never touch the wire: correctness plus counter routing.
    #[test]
    #[cfg(unix)]
    fn shm_fast_path_covers_put_get_amo_flag() {
        let fabrics = fleet(&map(2, 1, 2), &quick_cfg());
        assert!(
            fabrics[0].shm.is_some(),
            "shm tier should be on by default on unix"
        );
        let (f0, f1) = (fabrics[0].clone(), fabrics[1].clone());
        run_fleet(&fabrics, |f, me| {
            if me == ProcId(0) {
                // Blocking put + fused flag, observed by the peer.
                f.put(me, ProcId(1), BSEG, 0, &0xABCDu64.to_ne_bytes());
                f.flag_add(me, ProcId(1), SPARE_FLAG, 1);
                // Nonblocking put completes at injection; quiet has no debt.
                let tok = f.put_nb(me, ProcId(1), BSEG, 8, &[7u8; 8]);
                assert!(f.put_test(me, tok), "shm put_nb completes at injection");
                f.quiet(me);
                // AMO on the peer's bootstrap segment.
                let old = f.amo_fetch_add_u64(me, ProcId(1), BSEG, 16, 5);
                assert_eq!(old, 0);
                f.flag_wait_ge(me, SPARE_FLAG2, 1);
                // Read back what image 1 wrote into its own window.
                let mut out = [0u8; 8];
                f.get(me, ProcId(1), BSEG, 24, &mut out);
                assert_eq!(u64::from_ne_bytes(out), 0x5EED);
            } else {
                f.flag_wait_ge(me, SPARE_FLAG, 1);
                let mut out = [0u8; 8];
                f.get(me, me, BSEG, 0, &mut out);
                assert_eq!(
                    u64::from_ne_bytes(out),
                    0xABCD,
                    "shm put visible after flag"
                );
                f.put(me, me, BSEG, 24, &0x5EEDu64.to_ne_bytes());
                f.flag_add(me, ProcId(0), SPARE_FLAG2, 1);
            }
            f.image_done(me);
        });
        let s0 = f0.stats().snapshot();
        let s1 = f1.stats().snapshot();
        // Every cross-process data op went through shared memory; the wire
        // carried only control traffic (Open/heartbeat/Bye).
        assert!(s0.shm_puts >= 2, "put + put_nb via shm: {s0:?}");
        assert!(s0.shm_bytes >= 8 + 8 + 8, "put/put_nb/get bytes: {s0:?}");
        assert!(s0.shm_flag_ops >= 2, "amo + flag_add via shm: {s0:?}");
        assert_eq!(s0.puts_intra + s0.puts_inter, 0, "no wire puts: {s0:?}");
        assert_eq!(s0.gets_intra + s0.gets_inter, 0, "no wire gets: {s0:?}");
        assert_eq!(s0.puts_nb_injected, s0.puts_nb_completed, "nb debt retired");
        assert!(s1.shm_flag_ops >= 1, "peer's ack flag via shm: {s1:?}");
    }

    /// Segments allocated after bootstrap live in the shared arena and are
    /// addressable by same-host peers through the published directory.
    #[test]
    #[cfg(unix)]
    fn shm_post_bootstrap_segment_is_peer_addressable() {
        let fabrics = fleet(&map(2, 1, 2), &quick_cfg());
        run_fleet(&fabrics, |f, me| {
            let seg = f.alloc_segment(me, 4096);
            assert_eq!(seg, SegmentId(1));
            // Publish-then-use: both sides allocate before either touches
            // the peer's new segment (flag barrier over the shm tables).
            let peer = ProcId(1 - me.index());
            f.flag_add(me, peer, SPARE_FLAG, 1);
            f.flag_wait_ge(me, SPARE_FLAG, 1);
            f.put(me, peer, seg, 128, &[me.index() as u8 + 10; 64]);
            f.flag_add(me, peer, SPARE_FLAG2, 1);
            f.flag_wait_ge(me, SPARE_FLAG2, 1);
            let mut out = [0u8; 64];
            f.get(me, me, seg, 128, &mut out);
            assert_eq!(out, [peer.index() as u8 + 10; 64]);
            f.image_done(me);
        });
    }

    /// `CAF_SOCKET_SHM=0`-style config keeps the pure-socket path as the
    /// differential oracle: same program, zero shm counters, wire puts.
    #[test]
    fn shm_off_runs_the_same_program_over_the_wire() {
        let cfg = SocketConfig {
            shm: false,
            ..quick_cfg()
        };
        let fabrics = fleet(&map(2, 1, 2), &cfg);
        let f0 = fabrics[0].clone();
        run_fleet(&fabrics, |f, me| {
            if me == ProcId(0) {
                f.put(me, ProcId(1), BSEG, 0, &0xABCDu64.to_ne_bytes());
                f.flag_add(me, ProcId(1), SPARE_FLAG, 1);
            } else {
                f.flag_wait_ge(me, SPARE_FLAG, 1);
                let mut out = [0u8; 8];
                f.get(me, me, BSEG, 0, &mut out);
                assert_eq!(u64::from_ne_bytes(out), 0xABCD);
            }
            f.image_done(me);
        });
        let s = f0.stats().snapshot();
        assert_eq!(s.shm_puts + s.shm_bytes + s.shm_flag_ops, 0);
        assert_eq!(s.puts_inter, 1, "the put went over the wire: {s:?}");
    }

    /// A dead peer is never serviced through shared memory: the shm fast
    /// path re-checks liveness and panics with the per-rank report.
    #[test]
    #[cfg(unix)]
    fn shm_op_to_dead_peer_panics_loudly() {
        let cfg = SocketConfig {
            peer_timeout: Duration::from_millis(400),
            heartbeat_period: Duration::from_millis(50),
            ..quick_cfg()
        };
        let fabrics = fleet(&map(2, 1, 2), &cfg);
        let victim = fabrics[1].clone();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_fleet(&fabrics, move |f, me| {
                if me == ProcId(0) {
                    std::thread::sleep(Duration::from_millis(150));
                    victim.sever();
                    // Wait for the heartbeat tier to declare the death,
                    // then hit the shm path directly.
                    let t0 = Instant::now();
                    while f.alive_images().len() == 2 {
                        assert!(t0.elapsed() < Duration::from_secs(5));
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    f.put(me, ProcId(1), BSEG, 0, &[1u8; 8]);
                } else {
                    std::thread::sleep(Duration::from_millis(500));
                }
                f.image_done(me);
            });
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".into());
        assert!(
            msg.contains("image 2") || msg.contains("dead"),
            "shm op must fail loudly naming the dead peer, got: {msg}"
        );
    }
}
