//! Cluster machine models: `nodes × sockets × cores`.

use crate::ids::{CoreId, NodeId, SocketId};
use serde::{Deserialize, Serialize};

/// A homogeneous cluster description.
///
/// Every node has the same socket/core structure — true of the paper's
/// evaluation platform (44 identical dual quad-core Opteron nodes) and of
/// essentially every production cluster partition. A [`MachineModel`] is the
/// *hardware* half of a topology; the *software* half (which image runs
/// where) is a [`crate::placement::ImageMap`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Human-readable name, echoed by benchmark harnesses.
    pub name: String,
    /// Number of compute nodes.
    pub nodes: usize,
    /// Sockets per node (NUMA domains in the paper's future-work hierarchy).
    pub sockets_per_node: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
}

/// Where a core sits inside the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreLocation {
    /// The node the core belongs to.
    pub node: NodeId,
    /// The socket within that node.
    pub socket: SocketId,
    /// The core index *within the node* (0..cores_per_node).
    pub core: CoreId,
}

impl MachineModel {
    /// Build a machine model, validating that every extent is non-zero.
    ///
    /// # Panics
    /// Panics if any of `nodes`, `sockets_per_node`, `cores_per_socket` is 0.
    pub fn new(
        name: impl Into<String>,
        nodes: usize,
        sockets_per_node: usize,
        cores_per_socket: usize,
    ) -> Self {
        assert!(nodes > 0, "a machine needs at least one node");
        assert!(sockets_per_node > 0, "a node needs at least one socket");
        assert!(cores_per_socket > 0, "a socket needs at least one core");
        Self {
            name: name.into(),
            nodes,
            sockets_per_node,
            cores_per_socket,
        }
    }

    /// Cores in one node.
    #[inline]
    pub fn cores_per_node(&self) -> usize {
        self.sockets_per_node * self.cores_per_socket
    }

    /// Total cores in the machine — the maximum sensible image count for a
    /// one-image-per-core launch.
    #[inline]
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node()
    }

    /// Decode a *global* core index (0..total_cores, node-major) into its
    /// location.
    ///
    /// Global core indices enumerate cores node by node, socket by socket:
    /// index `g` lives on node `g / cores_per_node`, and within the node on
    /// socket `(g % cores_per_node) / cores_per_socket`.
    pub fn locate_global_core(&self, global_core: usize) -> CoreLocation {
        assert!(
            global_core < self.total_cores(),
            "global core {global_core} out of range ({} cores)",
            self.total_cores()
        );
        let cpn = self.cores_per_node();
        let node = NodeId(global_core / cpn);
        let within = global_core % cpn;
        CoreLocation {
            node,
            socket: SocketId(within / self.cores_per_socket),
            core: CoreId(within),
        }
    }

    /// Inverse of [`Self::locate_global_core`].
    pub fn global_core_index(&self, loc: CoreLocation) -> usize {
        assert!(loc.node.index() < self.nodes, "node out of range");
        assert!(
            loc.core.index() < self.cores_per_node(),
            "core out of range"
        );
        loc.node.index() * self.cores_per_node() + loc.core.index()
    }

    /// Socket that a node-local core index belongs to.
    #[inline]
    pub fn socket_of_core(&self, core: CoreId) -> SocketId {
        SocketId(core.index() / self.cores_per_socket)
    }

    /// True when two core locations share a node (shared-memory reachable —
    /// the distinction at the heart of the paper's methodology).
    #[inline]
    pub fn same_node(&self, a: CoreLocation, b: CoreLocation) -> bool {
        a.node == b.node
    }

    /// True when two core locations share a socket of the same node (the
    /// finer locality level of the paper's future-work multi-level
    /// hierarchy).
    #[inline]
    pub fn same_socket(&self, a: CoreLocation, b: CoreLocation) -> bool {
        a.node == b.node && a.socket == b.socket
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opteron44() -> MachineModel {
        MachineModel::new("whale", 44, 2, 4)
    }

    #[test]
    fn core_counts() {
        let m = opteron44();
        assert_eq!(m.cores_per_node(), 8);
        assert_eq!(m.total_cores(), 352);
    }

    #[test]
    fn locate_first_and_last_core() {
        let m = opteron44();
        let first = m.locate_global_core(0);
        assert_eq!(first.node, NodeId(0));
        assert_eq!(first.socket, SocketId(0));
        assert_eq!(first.core, CoreId(0));
        let last = m.locate_global_core(351);
        assert_eq!(last.node, NodeId(43));
        assert_eq!(last.socket, SocketId(1));
        assert_eq!(last.core, CoreId(7));
    }

    #[test]
    fn locate_socket_boundary() {
        let m = opteron44();
        // Core 4 of node 0 is the first core of socket 1.
        let loc = m.locate_global_core(4);
        assert_eq!(loc.node, NodeId(0));
        assert_eq!(loc.socket, SocketId(1));
        assert_eq!(loc.core, CoreId(4));
    }

    #[test]
    fn global_core_roundtrip() {
        let m = opteron44();
        for g in 0..m.total_cores() {
            let loc = m.locate_global_core(g);
            assert_eq!(m.global_core_index(loc), g);
        }
    }

    #[test]
    fn same_node_and_socket_predicates() {
        let m = opteron44();
        let a = m.locate_global_core(0);
        let b = m.locate_global_core(5); // node 0, socket 1
        let c = m.locate_global_core(8); // node 1
        assert!(m.same_node(a, b));
        assert!(!m.same_socket(a, b));
        assert!(!m.same_node(a, c));
        assert!(m.same_socket(a, m.locate_global_core(3)));
    }

    #[test]
    fn socket_of_core() {
        let m = opteron44();
        assert_eq!(m.socket_of_core(CoreId(0)), SocketId(0));
        assert_eq!(m.socket_of_core(CoreId(3)), SocketId(0));
        assert_eq!(m.socket_of_core(CoreId(4)), SocketId(1));
        assert_eq!(m.socket_of_core(CoreId(7)), SocketId(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_out_of_range_panics() {
        opteron44().locate_global_core(352);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        MachineModel::new("bad", 0, 1, 1);
    }

    #[test]
    fn single_core_machine() {
        let m = MachineModel::new("uni", 1, 1, 1);
        assert_eq!(m.total_cores(), 1);
        let loc = m.locate_global_core(0);
        assert_eq!(m.global_core_index(loc), 0);
    }
}
