//! What the sweep runs: machine scenarios, the collective-algorithm
//! matrix, and the built-in SPMD conformance program.

use caf_collectives::{BarrierAlgo, BcastAlgo, CollectiveConfig, GatherAlgo, ReduceAlgo};
use caf_runtime::ImageCtx;
use caf_topology::{presets, MachineModel};

/// A machine + image-count cell of the sweep.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Short label used in reports.
    pub name: String,
    /// The simulated cluster.
    pub machine: MachineModel,
    /// Images launched (packed placement).
    pub images: usize,
}

impl Scenario {
    /// Small hierarchical box: 2 nodes × 1 socket × 4 cores, 8 images.
    pub fn mini() -> Self {
        Self {
            name: "mini-2x4".into(),
            machine: presets::mini(2, 4),
            images: 8,
        }
    }

    /// The paper's cluster preset (2 sockets × 4 cores per node), 16
    /// images packed onto 2 nodes — exercises the socket level too.
    pub fn whale() -> Self {
        Self {
            name: "whale-16".into(),
            machine: presets::whale(),
            images: 16,
        }
    }

    /// A deliberately tiny cell for unit tests of the harness itself.
    pub fn tiny() -> Self {
        Self {
            name: "tiny-2x2".into(),
            machine: presets::mini(2, 2),
            images: 4,
        }
    }

    /// Resolve a scenario by its report label — how the `--socket-child`
    /// process reconstructs the parent's scenario from the environment.
    pub fn by_name(name: &str) -> Option<Self> {
        [Self::mini(), Self::whale(), Self::tiny()]
            .into_iter()
            .find(|s| s.name == name)
    }
}

/// Resolve an algorithm-matrix cell by its label (the same lookup, for the
/// collective config).
pub fn algo_by_name(name: &str) -> Option<CollectiveConfig> {
    algo_matrix()
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, a)| a)
}

/// The collective-algorithm matrix: presets plus every per-dimension
/// algorithm forced individually (including the pipelined and
/// Rabenseifner large-message paths) on top of the two-level base.
pub fn algo_matrix() -> Vec<(String, CollectiveConfig)> {
    let mut m: Vec<(String, CollectiveConfig)> = vec![
        ("auto".into(), CollectiveConfig::auto()),
        ("one_level".into(), CollectiveConfig::one_level()),
        ("two_level".into(), CollectiveConfig::two_level()),
    ];
    for b in [
        BarrierAlgo::CentralCounter,
        BarrierAlgo::Dissemination,
        BarrierAlgo::BinomialTree,
        BarrierAlgo::Tdlb,
        BarrierAlgo::TdlbMultilevel,
    ] {
        m.push((
            format!("barrier={b:?}"),
            CollectiveConfig {
                barrier: b,
                ..CollectiveConfig::two_level()
            },
        ));
    }
    for r in [
        ReduceAlgo::FlatRecursiveDoubling,
        ReduceAlgo::FlatBinomial,
        ReduceAlgo::TwoLevel,
        ReduceAlgo::TwoLevelPipelined,
        ReduceAlgo::Rabenseifner,
    ] {
        m.push((
            format!("reduce={r:?}"),
            CollectiveConfig {
                reduce: r,
                ..CollectiveConfig::two_level()
            },
        ));
    }
    for b in [
        BcastAlgo::FlatLinear,
        BcastAlgo::FlatBinomial,
        BcastAlgo::TwoLevel,
        BcastAlgo::TwoLevelPipelined,
    ] {
        m.push((
            format!("bcast={b:?}"),
            CollectiveConfig {
                bcast: b,
                ..CollectiveConfig::two_level()
            },
        ));
    }
    for g in [GatherAlgo::FlatLinear, GatherAlgo::TwoLevel] {
        m.push((
            format!("gather={g:?}"),
            CollectiveConfig {
                gather: g,
                ..CollectiveConfig::two_level()
            },
        ));
    }
    m
}

/// FNV-1a accumulation of one `u64`.
fn fnv(h: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Elements in the "large" buffers: 2 500 × 8 B = 20 000 B, above the
/// default 16 KiB pipeline chunk, so pipelined/Rabenseifner paths run
/// multi-chunk.
const BIG: usize = 2_500;

/// The built-in SPMD conformance program: point-to-point coarray traffic
/// plus every collective family, small and multi-chunk payloads, and a
/// subteam phase. Returns a per-image digest of everything observed; any
/// schedule- or fabric-dependent divergence changes the digest. Integer
/// arithmetic only — u64 sums are exactly associative, so the digest is
/// fabric- and schedule-independent for a correct runtime.
pub fn conformance(img: &mut ImageCtx) -> u64 {
    let me = img.this_image();
    let n = img.num_images();
    let mut h = 0xcbf2_9ce4_8422_2325u64;

    // 1. Neighbor-ring coarray put, then read back what our left neighbor
    //    wrote into us.
    let co = img.coarray::<u64>(2);
    let right = me % n + 1;
    co.put(right, 0, &[me as u64 * 17 + 3, me as u64]);
    img.sync_all();
    for v in co.read_local() {
        fnv(&mut h, v);
    }
    img.sync_all(); // reads done before anyone reuses the segment

    // 2. Small allreduce (latency path).
    let mut small = [me as u64, (me * me) as u64, 7];
    img.co_sum(&mut small);
    for v in small {
        fnv(&mut h, v);
    }

    // 3. Multi-chunk allreduce (pipelined / Rabenseifner paths).
    let mut big: Vec<u64> = (0..BIG as u64).map(|i| i.wrapping_mul(me as u64)).collect();
    img.co_sum(&mut big);
    for i in [0, BIG / 2, BIG - 1] {
        fnv(&mut h, big[i]);
    }

    // 4. Max reduction.
    let mut mx = [(me as u64 * 31) % 13];
    img.co_max(&mut mx);
    fnv(&mut h, mx[0]);

    // 5. Small broadcast from the last image.
    let mut b = [me as u64; 5];
    img.co_broadcast(&mut b, n);
    for v in b {
        fnv(&mut h, v);
    }

    // 6. Multi-chunk broadcast from image 1.
    let mut bb: Vec<u64> = (0..BIG as u64).map(|i| i ^ (me as u64) << 32).collect();
    img.co_broadcast(&mut bb, 1);
    for i in [0, BIG / 2, BIG - 1] {
        fnv(&mut h, bb[i]);
    }

    // 7. Gather at image 1.
    if let Some(all) = img.co_gather(&[me as u64 * 3 + 1], 1) {
        for v in all {
            fnv(&mut h, v);
        }
    }

    // 8. All-to-all.
    let send: Vec<u64> = (1..=n as u64).map(|j| me as u64 * 100 + j).collect();
    for v in img.co_alltoall(&send, 1) {
        fnv(&mut h, v);
    }

    // 9. Even/odd subteams, reduce within each.
    let team = img.form_team(if me.is_multiple_of(2) { 1 } else { 2 });
    let (_team, sub) = img.change_team(team, |img| {
        let mut s = [img.this_image() as u64 * 5 + 1];
        img.co_sum(&mut s);
        s[0]
    });
    fnv(&mut h, sub);

    img.sync_all();
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_dimension() {
        let m = algo_matrix();
        assert!(m.len() >= 16, "got {} configs", m.len());
        let names: Vec<&str> = m.iter().map(|(n, _)| n.as_str()).collect();
        for needle in [
            "reduce=Rabenseifner",
            "reduce=TwoLevelPipelined",
            "bcast=TwoLevelPipelined",
            "barrier=Dissemination",
        ] {
            assert!(names.contains(&needle), "matrix lacks {needle}");
        }
        let mut uniq = names.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len(), "duplicate matrix entries");
    }

    #[test]
    fn conformance_digest_is_reproducible() {
        let run = || {
            caf_runtime::run(
                caf_runtime::RunConfig::sim_packed(presets::mini(2, 2), 4),
                conformance,
            )
        };
        let a = run();
        assert_eq!(a, run());
        assert_eq!(a.len(), 4);
    }
}
