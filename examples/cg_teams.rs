//! Conjugate gradient on the runtime, comparing 1-level and 2-level
//! collectives: CG's inner loop performs three single-f64 `co_sum`
//! allreduces per iteration — the latency-bound collective the paper's
//! two-level reduction targets — so the hierarchy-aware runtime shortens
//! every iteration.
//!
//! Run with: `cargo run --release --example cg_teams`

use caf::apps::{cg_solve, CgConfig};
use caf::runtime::{run, CollectiveConfig, RunConfig};
use caf::topology::presets;

fn main() {
    let cfg = CgConfig {
        n: 24,
        rtol: 1e-9,
        max_iters: 600,
    };

    let mut times = Vec::new();
    for (label, collectives) in [
        ("1-level", CollectiveConfig::one_level()),
        ("2-level", CollectiveConfig::two_level()),
    ] {
        // 16 images on 2 nodes: halo traffic is mixed intra/inter-node and
        // every dot product crosses the node boundary.
        let rc = RunConfig::sim_packed(presets::mini(2, 8), 16).with_collectives(collectives);
        let out = run(rc, move |img| {
            let o = cg_solve(img, &cfg);
            (o.iters, o.rel_residual, o.time_ns)
        });
        let (iters, residual, time_ns) = out[0];
        assert!(residual <= 1e-9, "CG did not converge: {residual}");
        println!(
            "{label}: {iters} iterations, residual {residual:.2e}, \
             {:.1} us modeled ({:.2} us/iter)",
            time_ns as f64 / 1000.0,
            time_ns as f64 / 1000.0 / iters as f64,
        );
        times.push(time_ns);
    }
    assert!(
        times[1] < times[0],
        "2-level collectives should shorten CG iterations"
    );
    println!(
        "cg_teams OK — hierarchy-aware collectives save {:.0}% of solve time",
        (1.0 - times[1] as f64 / times[0] as f64) * 100.0
    );
}
