//! EXP-P1 (validation) — put latency and effective bandwidth, intra- vs
//! inter-node, straight off the fabric: the osu-microbenchmark-style
//! curves that validate the cost model against its calibration targets
//! (DESIGN.md §6): ~0.1 µs intra-node visibility, ~1.8 µs inter-node put
//! latency, ~1.4 GB/s 4xDDR InfiniBand effective bandwidth, ~4 GB/s
//! intra-node copy bandwidth.

use caf_bench::print_cost_preamble;
use caf_fabric::{bootstrap, run_spmd, Fabric, FlagId, SimConfig, SimFabric};
use caf_microbench::Table;
use caf_topology::{presets, ImageMap, Placement, ProcId};
use parking_lot::Mutex;
use std::sync::Arc;

/// Ping-pong `iters` rounds of `bytes` between images 0 and 1 of `map`;
/// returns modeled ns per one-way message.
fn pingpong(nodes: usize, cores: usize, bytes: usize, iters: u64) -> f64 {
    let map = ImageMap::new(presets::mini(nodes, cores), 2, &Placement::Packed);
    let fabric = SimFabric::new(
        map,
        SimConfig {
            cost: presets::whale_cost(),
            overheads: presets::stacks::UHCAF,
            ..SimConfig::default()
        },
    );
    let f = fabric.clone();
    let out = Arc::new(Mutex::new(0u64));
    let o2 = out.clone();
    run_spmd(fabric, move |me| {
        let seg = f.alloc_segment(me, bytes.max(8));
        // Identical allocation sequences give identical ids; the barrier
        // guarantees the peer's segment exists before the first put.
        bootstrap::control_barrier(&*f, me, &mut 0);
        let flag = FlagId(2);
        let payload = vec![0xA5u8; bytes];
        let peer = ProcId(1 - me.index());
        let t0 = f.now_ns(me);
        for round in 1..=iters {
            if me == ProcId(0) {
                f.put(me, peer, seg, 0, &payload);
                f.flag_add(me, peer, flag, 1);
                f.flag_wait_ge(me, flag, round);
            } else {
                f.flag_wait_ge(me, flag, round);
                f.put(me, peer, seg, 0, &payload);
                f.flag_add(me, peer, flag, 1);
            }
        }
        if me == ProcId(0) {
            *o2.lock() = f.now_ns(me) - t0;
        }
        f.image_done(me);
    });
    let total = *out.lock();
    total as f64 / (2 * iters) as f64
}

fn main() {
    print_cost_preamble("EXP-P1");
    let mut t = Table::new(
        "EXP-P1 (model validation): one-way put latency / effective bandwidth",
        &[
            "bytes",
            "intra-node us",
            "intra GB/s",
            "inter-node us",
            "inter GB/s",
        ],
    );
    for &bytes in &[8usize, 256, 4096, 65536, 1 << 20] {
        let intra = pingpong(1, 2, bytes, 20);
        let inter = pingpong(2, 1, bytes, 20);
        t.row(&[
            bytes.to_string(),
            format!("{:.2}", intra / 1000.0),
            format!("{:.2}", bytes as f64 / intra),
            format!("{:.2}", inter / 1000.0),
            format!("{:.2}", bytes as f64 / inter),
        ]);
    }
    t.note("calibration targets: inter latency ~2-3 us (w/ software), inter bw ~1.4 GB/s, intra bw ~4 GB/s");
    t.print();
}
