//! EXP-R1 — all-to-all reduction (`co_sum`), §V-A / §VII:
//!
//! > "getting up to … 74-fold performance improvement[ ] over the default
//! > approach" (reduction, §VII)
//!
//! Two sweeps at 8 images/node: team-size scaling at a small payload
//! (latency-bound, where the hierarchy win is largest) and payload scaling
//! at the largest team. The "default approach" is the 1-level flat
//! recursive-doubling allreduce on the UHCAF stack.

use caf_bench::{print_cost_preamble, scaled};
use caf_microbench::{allreduce_latency, report, MicroConfig, Table};
use caf_runtime::{CollectiveConfig, ReduceAlgo};
use caf_topology::presets::stacks;

/// Flat algorithms run on the 1-level runtime (UHCAF_FLAT: no shared-memory
/// exploitation), the two-level algorithm on the hierarchy-aware runtime —
/// the same pairing the paper measures as "default" vs "our approach".
fn run(n: usize, elems: usize, algo: ReduceAlgo, iters: usize) -> f64 {
    let stack = match algo {
        ReduceAlgo::TwoLevel => stacks::UHCAF,
        _ => stacks::UHCAF_FLAT,
    };
    let mut mc = MicroConfig::whale(n, 8)
        .with_stack(stack)
        .with_collectives(CollectiveConfig {
            reduce: algo,
            ..CollectiveConfig::default()
        });
    mc.iters = iters;
    allreduce_latency(&mc, elems).ns_per_op
}

fn main() {
    print_cost_preamble("EXP-R1");
    let iters = scaled(10, 3);
    let sizes: Vec<usize> = if caf_bench::quick_mode() {
        vec![16, 64]
    } else {
        vec![16, 32, 64, 128, 256, 352]
    };

    let mut t1 = Table::new(
        "EXP-R1a: co_sum latency vs team size, 1 element, 8 images/node (modeled us)",
        &[
            "images(nodes)",
            "two-level",
            "flat-recdbl",
            "flat-binomial",
            "speedup",
        ],
    );
    let mut best: f64 = 0.0;
    for &n in &sizes {
        let two = run(n, 1, ReduceAlgo::TwoLevel, iters);
        let flat = run(n, 1, ReduceAlgo::FlatRecursiveDoubling, iters);
        let bino = run(n, 1, ReduceAlgo::FlatBinomial, iters);
        best = best.max(flat / two);
        t1.row(&[
            format!("{}({})", n, n / 8),
            report::us(two),
            report::us(flat),
            report::us(bino),
            report::speedup(flat, two),
        ]);
    }
    t1.note(format!(
        "measured max two-level speedup over flat: {best:.1}x (paper: up to 74x)"
    ));
    t1.print();

    let n = scaled(256, 64);
    let mut t2 = Table::new(
        format!(
            "EXP-R1b: co_sum latency vs payload, {n} images ({} nodes)",
            n / 8
        ),
        &["elements(f64)", "two-level", "flat-recdbl", "speedup"],
    );
    for &elems in &[1usize, 16, 128, 1024, 4096] {
        let two = run(n, elems, ReduceAlgo::TwoLevel, iters);
        let flat = run(n, elems, ReduceAlgo::FlatRecursiveDoubling, iters);
        t2.row(&[
            elems.to_string(),
            report::us(two),
            report::us(flat),
            report::speedup(flat, two),
        ]);
    }
    t2.note("hierarchy advantage shrinks as payload bandwidth dominates latency");
    t2.print();
}
