//! EXP-A2 — the §VII future-work ablation: multi-level hierarchies.
//!
//! > "Future work will look at how our methodology can support multi-level
//! > hierarchies to represent … on-node locality domains such as NUMA
//! > memory nodes, shared caches, processor sockets and cores."
//!
//! On a NUMA-heavy machine (4 sockets × 8 cores per node, with same-socket
//! notifications ~3× cheaper than cross-socket ones) we compare the
//! 2-level TDLB against the 3-level socket-aware TDLB, and both against
//! flat dissemination. On the paper's own machine (socket level not
//! modeled) the 3-level variant buys nothing — also shown, as the control.

use caf_bench::{print_cost_preamble, scaled};
use caf_fabric::{SimConfig, SimFabric};
use caf_microbench::{report, Table};
use caf_runtime::{run_on_fabric, BarrierAlgo, CollectiveConfig};
use caf_topology::{presets, CostParams, ImageMap, MachineModel, Placement};

fn barrier_ns(
    machine: MachineModel,
    cost: CostParams,
    images: usize,
    per_node: usize,
    algo: BarrierAlgo,
    iters: usize,
) -> f64 {
    let map = ImageMap::new(machine, images, &Placement::Block { per_node });
    let fabric = SimFabric::new(
        map,
        SimConfig {
            cost,
            overheads: presets::stacks::UHCAF,
            ..SimConfig::default()
        },
    );
    let cfg = CollectiveConfig {
        barrier: algo,
        ..CollectiveConfig::default()
    };
    let spans = run_on_fabric(fabric, cfg, move |img| {
        for _ in 0..3 {
            img.sync_all();
        }
        img.sync_all();
        let t0 = img.now_ns();
        for _ in 0..iters {
            img.sync_all();
        }
        (t0, img.now_ns())
    });
    let start = spans.iter().map(|s| s.0).min().expect("images");
    let end = spans.iter().map(|s| s.1).max().expect("images");
    (end - start) as f64 / iters as f64
}

fn main() {
    print_cost_preamble("EXP-A2");
    let iters = scaled(10, 3);
    let sizes: Vec<usize> = if caf_bench::quick_mode() {
        vec![64]
    } else {
        vec![32, 64, 128, 256]
    };

    let mut t = Table::new(
        "EXP-A2: multi-level TDLB on NUMA nodes (4 sockets x 8 cores, 32 images/node; modeled us)",
        &[
            "images(nodes)",
            "dissemination",
            "TDLB-2level",
            "TDLB-3level",
            "3lvl-vs-2lvl",
        ],
    );
    for &n in &sizes {
        let nodes = n / 32;
        let machine = presets::numa(nodes.max(1));
        let dissem = barrier_ns(
            machine.clone(),
            presets::numa_cost(),
            n,
            32,
            BarrierAlgo::Dissemination,
            iters,
        );
        let two = barrier_ns(
            machine.clone(),
            presets::numa_cost(),
            n,
            32,
            BarrierAlgo::Tdlb,
            iters,
        );
        let three = barrier_ns(
            machine,
            presets::numa_cost(),
            n,
            32,
            BarrierAlgo::TdlbMultilevel,
            iters,
        );
        t.row(&[
            format!("{n}({nodes})"),
            report::us(dissem),
            report::us(two),
            report::us(three),
            report::speedup(two, three),
        ]);
    }
    t.note("same-socket gap 25ns vs cross-socket 90ns: the socket stage pays off");
    t.print();

    // Control: on the paper's whale model the socket level is not
    // distinguished, so the 3-level variant should NOT win.
    let n = scaled(64, 32);
    let two = barrier_ns(
        presets::whale(),
        presets::whale_cost(),
        n,
        8,
        BarrierAlgo::Tdlb,
        iters,
    );
    let three = barrier_ns(
        presets::whale(),
        presets::whale_cost(),
        n,
        8,
        BarrierAlgo::TdlbMultilevel,
        iters,
    );
    let mut c = Table::new(
        "EXP-A2 control: whale machine (no modeled socket asymmetry)",
        &["images", "TDLB-2level", "TDLB-3level"],
    );
    c.row(&[n.to_string(), report::us(two), report::us(three)]);
    c.note("extra stage without a cheaper level should not help");
    c.print();
}
