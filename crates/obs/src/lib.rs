//! # caf-obs
//!
//! Fleet-wide observability for multi-process `SocketFabric` runs: the
//! supervisor-side half of the telemetry pipeline whose per-process half
//! lives in `caf_fabric::socket::obs`.
//!
//! Each fleet member ships [`NodeTelemetry`] blobs to the `caf-launch`
//! coordinator (live updates while running, a final snapshot on success, a
//! flight recorder on the way down). This crate turns a collection of those
//! shipments into fleet-level artifacts:
//!
//! * [`merge`] — one Perfetto/Chrome timeline spanning every process, with
//!   each child's monotonic clock aligned onto the coordinator's, plus
//!   fleet-wide per-(team, op, level) percentile tables.
//! * [`report`] — `fleet_report.json`: per-node-pair wire counters,
//!   put-ack latency histograms, heartbeat jitter, abort causes.
//! * [`prom`] + [`server`] — a live `/metrics` (Prometheus text format)
//!   and `/healthz` surface served while the fleet runs.
//!
//! Everything is hand-rolled on `std` (no HTTP or serialization
//! dependencies), matching the repo's offline-first policy.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
#![forbid(unsafe_code)]

pub mod merge;
pub mod prom;
pub mod report;
pub mod server;

pub use caf_fabric::{NodeTelemetry, TelemetryPhase};
pub use merge::{fleet_summary, merged_chrome_json, merged_events, NodeFeed};
pub use prom::FleetRegistry;
pub use report::fleet_report_json;
pub use server::ObsServer;
