//! EXP-C1-msgsize — the large-message pipelined data path, §V-A / §VII:
//! broadcast and all-reduce latency vs payload size on the whale cluster,
//! comparing the flat tree, the store-and-forward two-level algorithm, the
//! chunked pipelined two-level algorithm (and Rabenseifner for reduce),
//! and the size-aware `Auto` policy.
//!
//! The claim under test: store-and-forward two-level collectives serialize
//! the inter-node stage and the intranode fan-out, so at large payloads
//! the pipelined variant — which streams K-byte chunks down a pipelined
//! binary tree of node leaders while each leader fans received chunks out
//! through shared memory — is ≥2× faster in modeled time at ≥256 KiB,
//! while `Auto` keeps picking the latency-optimal tree at 8 B (no
//! small-message regression).
//!
//! Besides the usual table, this harness emits machine-readable results to
//! `BENCH_collectives.json` (override with `CAF_BENCH_OUT`); CI reruns it
//! at quick scale and `cargo xtask bench-diff`s against the committed
//! baseline, failing on >10% modeled-time regression.

use caf_bench::{print_cost_preamble, quick_mode, scaled};
use caf_microbench::{allreduce_latency, broadcast_latency, report, MicroConfig, Table};
use caf_runtime::{BcastAlgo, CollectiveConfig, ReduceAlgo};

struct Rec {
    op: &'static str,
    bytes: usize,
    algo: &'static str,
    ns: f64,
}

fn mc(n: usize, cfg: CollectiveConfig, iters: usize) -> MicroConfig {
    let mut mc = MicroConfig::whale(n, 8).with_collectives(cfg);
    mc.warmup = 1;
    mc.iters = iters;
    mc
}

fn bcast_ns(n: usize, elems: usize, algo: BcastAlgo, iters: usize) -> f64 {
    let cfg = CollectiveConfig {
        bcast: algo,
        ..CollectiveConfig::default()
    };
    broadcast_latency(&mc(n, cfg, iters), elems).ns_per_op
}

fn reduce_ns(n: usize, elems: usize, algo: ReduceAlgo, iters: usize) -> f64 {
    let cfg = CollectiveConfig {
        reduce: algo,
        ..CollectiveConfig::default()
    };
    allreduce_latency(&mc(n, cfg, iters), elems).ns_per_op
}

/// Name the comparator whose modeled time the `Auto` run reproduced
/// exactly (the simulator is deterministic, so a matching algorithm gives
/// a bit-identical latency).
fn matched<'a>(auto: f64, named: &[(&'a str, f64)]) -> &'a str {
    named
        .iter()
        .find(|(_, ns)| (auto - ns).abs() < 1e-6)
        .map(|(name, _)| *name)
        .unwrap_or("?")
}

fn json_escape_free(s: &str) -> &str {
    // All strings we emit are identifiers; keep the writer honest anyway.
    assert!(
        s.chars()
            .all(|c| c.is_ascii_alphanumeric() || "_-.".contains(c)),
        "unexpected character in JSON field: {s}"
    );
    s
}

fn write_json(path: &str, n: usize, recs: &[Rec]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"exp_c1_msgsize\",\n");
    out.push_str("  \"machine\": \"whale\",\n");
    out.push_str(&format!("  \"images\": {n},\n"));
    out.push_str("  \"per_node\": 8,\n");
    out.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    out.push_str("  \"unit\": \"modeled_ns_per_op\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in recs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"bytes\": {}, \"algo\": \"{}\", \"ns\": {:.3}}}{}\n",
            json_escape_free(r.op),
            r.bytes,
            json_escape_free(r.algo),
            r.ns,
            if i + 1 < recs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path} ({} results)", recs.len());
}

fn main() {
    print_cost_preamble("EXP-C1-msgsize");
    let n = scaled(352, 64);
    let iters = scaled(3, 2);
    // Payloads in f64 elements: 8 B .. 4 MiB (quick: 8 B, 32 KiB, 1 MiB).
    // `CAF_BENCH_SIZES=1,4096` narrows the sweep for tuning runs.
    let sizes: Vec<usize> = if let Ok(s) = std::env::var("CAF_BENCH_SIZES") {
        s.split(',')
            .map(|x| {
                x.trim()
                    .parse()
                    .expect("CAF_BENCH_SIZES: comma-separated element counts")
            })
            .collect()
    } else if quick_mode() {
        vec![1, 4096, 131_072]
    } else {
        vec![1, 128, 4096, 32_768, 131_072, 524_288]
    };
    let mut recs: Vec<Rec> = Vec::new();

    let mut t1 = Table::new(
        format!(
            "EXP-C1-msgsize (broadcast): co_broadcast latency vs payload, {n} images ({} nodes), modeled us",
            n / 8
        ),
        &["bytes", "flat-binomial", "two-level", "pipelined", "auto", "auto=", "2lvl/pipe"],
    );
    let mut bcast_big_speedup: f64 = f64::INFINITY;
    let mut bcast_small_ok = true;
    for &elems in &sizes {
        let bytes = elems * 8;
        let flat = bcast_ns(n, elems, BcastAlgo::FlatBinomial, iters);
        let two = bcast_ns(n, elems, BcastAlgo::TwoLevel, iters);
        let pipe = bcast_ns(n, elems, BcastAlgo::TwoLevelPipelined, iters);
        let auto = bcast_ns(n, elems, BcastAlgo::Auto, iters);
        let named = [
            ("flat_binomial", flat),
            ("two_level", two),
            ("two_level_pipelined", pipe),
        ];
        t1.row(&[
            bytes.to_string(),
            report::us(flat),
            report::us(two),
            report::us(pipe),
            report::us(auto),
            matched(auto, &named).to_string(),
            report::speedup(two, pipe),
        ]);
        for (algo, ns) in named {
            recs.push(Rec {
                op: "broadcast",
                bytes,
                algo,
                ns,
            });
        }
        recs.push(Rec {
            op: "broadcast",
            bytes,
            algo: "auto",
            ns: auto,
        });
        if bytes >= 256 * 1024 {
            bcast_big_speedup = bcast_big_speedup.min(two / pipe);
        }
        if bytes == 8 {
            bcast_small_ok = auto <= two * 1.001;
        }
    }
    if !quick_mode() {
        t1.note(format!(
            "min pipelined speedup over store-and-forward two-level at >=256 KiB: {bcast_big_speedup:.1}x (target: >=2x)"
        ));
    }
    t1.print();

    let mut t2 = Table::new(
        format!(
            "EXP-C1-msgsize (reduce): co_sum latency vs payload, {n} images ({} nodes), modeled us",
            n / 8
        ),
        &[
            "bytes",
            "flat-rd",
            "two-level",
            "pipelined",
            "rabenseifner",
            "auto",
            "auto=",
            "2lvl/pipe",
        ],
    );
    for &elems in &sizes {
        let bytes = elems * 8;
        let flat = reduce_ns(n, elems, ReduceAlgo::FlatRecursiveDoubling, iters);
        let two = reduce_ns(n, elems, ReduceAlgo::TwoLevel, iters);
        let pipe = reduce_ns(n, elems, ReduceAlgo::TwoLevelPipelined, iters);
        let rab = reduce_ns(n, elems, ReduceAlgo::Rabenseifner, iters);
        let auto = reduce_ns(n, elems, ReduceAlgo::Auto, iters);
        let named = [
            ("flat_recursive_doubling", flat),
            ("two_level", two),
            ("two_level_pipelined", pipe),
            ("rabenseifner", rab),
        ];
        t2.row(&[
            bytes.to_string(),
            report::us(flat),
            report::us(two),
            report::us(pipe),
            report::us(rab),
            report::us(auto),
            matched(auto, &named).to_string(),
            report::speedup(two, pipe),
        ]);
        for (algo, ns) in named {
            recs.push(Rec {
                op: "allreduce",
                bytes,
                algo,
                ns,
            });
        }
        recs.push(Rec {
            op: "allreduce",
            bytes,
            algo: "auto",
            ns: auto,
        });
    }
    t2.print();

    let path = std::env::var("CAF_BENCH_OUT").unwrap_or_else(|_| {
        let root = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
        format!("{root}/../../BENCH_collectives.json")
    });
    write_json(&path, n, &recs);

    if !quick_mode() {
        assert!(
            bcast_big_speedup >= 2.0,
            "pipelined broadcast speedup {bcast_big_speedup:.2}x at >=256 KiB misses the 2x target"
        );
        assert!(bcast_small_ok, "Auto regressed the 8 B broadcast");
        println!("acceptance: pipelined >=2x at >=256 KiB, no 8 B regression -- PASS");
    }
}
