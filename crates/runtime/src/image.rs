//! `ImageCtx` — the per-image runtime context: team stack, intrinsics,
//! synchronization statements, and collective entry points.

use crate::coarray::Coarray;
use crate::events::Events;
use crate::recovery::CheckpointStore;
use crate::team::{Team, INITIAL_TEAM_NUMBER};
use caf_collectives::{CoNumeric, CoValue, CollectiveConfig, TeamComm};
use caf_fabric::{bootstrap, ArcFabric, FlagId, RecoveryError};
use caf_topology::ProcId;
use caf_trace::{Event, EventKind};

/// Cell index within the critical-section lock coarray.
const CRITICAL_CELL: usize = 0;

/// The per-image runtime context handed to the SPMD body by
/// [`crate::run`]. All image numbering in this API is Fortran-style
/// **1-based**, relative to the *current team* unless stated otherwise.
pub struct ImageCtx {
    fabric: ArcFabric,
    me: ProcId,
    boot_epoch: u64,
    default_cfg: CollectiveConfig,
    /// Team stack: `[0]` = initial team, last = current team.
    teams: Vec<Team>,
    /// Pairwise `sync images` flags: one per global image (by-construction
    /// identical ids across images, allocated before any user code).
    sync_flags: FlagId,
    /// How many times I've synchronized with each global image.
    sync_count: Vec<u64>,
    /// Global lock cell backing the `critical` construct (one `u64` on
    /// image 1 of the initial team).
    critical_lock: Coarray<u64>,
    /// Last checkpoint epoch this image completed or restored (0 = none).
    ckpt_epoch: u64,
}

impl ImageCtx {
    /// Build the context for image `me`; collective across all images
    /// (called by the launcher on every image thread).
    pub(crate) fn new(fabric: ArcFabric, me: ProcId, cfg: CollectiveConfig) -> Self {
        let n = fabric.n_images();
        // Identical allocation sequence on every image => identical ids.
        let sync_flags = fabric.alloc_flags(me, n);
        let mut boot_epoch = 0;
        let mut comm = TeamComm::create_initial(fabric.clone(), me, cfg, &mut boot_epoch);
        let critical_lock = Coarray::allocate(fabric.clone(), me, &mut comm, 1);
        let initial = Team {
            comm,
            number: INITIAL_TEAM_NUMBER,
            depth: 0,
        };
        Self {
            fabric,
            me,
            boot_epoch,
            default_cfg: cfg,
            teams: vec![initial],
            sync_flags,
            sync_count: vec![0; n],
            critical_lock,
            ckpt_epoch: 0,
        }
    }

    /// Build the context for image `me` on a **respawned** process
    /// rejoining a running fleet (a fabric constructed with a rejoin
    /// generation). The initial-team bootstrap would wait forever on
    /// survivors that are long past it; instead this joins the survivors'
    /// recovery fence ([`caf_fabric::Fabric::heal`]) and then runs the
    /// same re-alignment sequence as [`Self::form_recovery_team`], so the
    /// rejoined image comes up already inside the recovery team — at
    /// checkpoint epoch 0, ready for [`Self::restore`] to resolve the last
    /// globally complete epoch with the survivors.
    pub fn rejoin(
        fabric: ArcFabric,
        me: ProcId,
        cfg: CollectiveConfig,
    ) -> Result<Self, RecoveryError> {
        fabric.heal(me)?;
        let survivors = fabric.alive_images();
        let n = fabric.n_images();
        let mut boot_epoch = 0;
        // Mirrors `form_recovery_team` exactly — heal, then the identical
        // allocation sequence every survivor runs — so flag/segment ids
        // line up across old and new incarnations.
        let sync_flags = fabric.alloc_flags(me, n);
        let mut comm = TeamComm::create_among(fabric.clone(), me, survivors, cfg, &mut boot_epoch);
        let critical_lock = Coarray::allocate(fabric.clone(), me, &mut comm, 1);
        Ok(Self {
            fabric,
            me,
            boot_epoch,
            default_cfg: cfg,
            teams: vec![Team {
                comm,
                number: INITIAL_TEAM_NUMBER,
                depth: 0,
            }],
            sync_flags,
            sync_count: vec![0; n],
            critical_lock,
            ckpt_epoch: 0,
        })
    }

    /// Final implicit synchronization at program end (called by the
    /// launcher after the user body returns). Barriers over the *initial
    /// team's current membership* — after a shrinking recovery that is the
    /// survivor set, and a full-fabric barrier would wait forever on the
    /// dead image.
    pub(crate) fn finalize(&mut self) {
        let members: Vec<ProcId> = self.teams[0].comm.members().as_ref().clone();
        bootstrap::control_barrier_among(&*self.fabric, self.me, &members, &mut self.boot_epoch);
        self.fabric.image_done(self.me);
    }

    // ------------------------------------------------------------------
    // Intrinsics
    // ------------------------------------------------------------------

    /// `this_image()`: my 1-based index in the current team.
    pub fn this_image(&self) -> usize {
        self.current().this_image()
    }

    /// `num_images()`: size of the current team.
    pub fn num_images(&self) -> usize {
        self.current().num_images()
    }

    /// `team_number()`: number of the current team (−1 for the initial
    /// team).
    pub fn team_number(&self) -> i64 {
        self.current().team_number()
    }

    /// Nesting depth of the current team (0 = initial).
    pub fn team_depth(&self) -> usize {
        self.teams.len() - 1
    }

    /// `get_team()`: the current team handle (immutable view).
    pub fn get_team(&self) -> &Team {
        self.current()
    }

    /// The initial team spanning all images.
    pub fn initial_team(&self) -> &Team {
        &self.teams[0]
    }

    /// Map a current-team image index (1-based) to the image's index in
    /// the **initial** team — the `image_index` adaptation the paper adds
    /// for teams (the `team_type` mapping array made queryable).
    pub fn image_index_in_initial(&self, idx1: usize) -> usize {
        let comm = &self.current().comm;
        assert!(
            (1..=comm.size()).contains(&idx1),
            "image index {idx1} outside team of {}",
            comm.size()
        );
        comm.proc_of(idx1 - 1).index() + 1
    }

    /// The fabric this run executes on (statistics, clocks).
    pub fn fabric(&self) -> &ArcFabric {
        &self.fabric
    }

    /// Current time in nanoseconds (virtual on the simulator).
    pub fn now_ns(&self) -> u64 {
        self.fabric.now_ns(self.me)
    }

    /// Account `ns` nanoseconds of local computation (virtual time on the
    /// simulator; free on real fabrics where computing takes real time).
    pub fn compute(&self, ns: u64) {
        self.fabric.compute(self.me, ns);
    }

    // ------------------------------------------------------------------
    // Teams
    // ------------------------------------------------------------------

    /// `form team (number, handle)`: split the current team by `number`.
    /// Collective over the current team; every image must call it.
    pub fn form_team(&mut self, number: i64) -> Team {
        self.form_team_inner(number, None)
    }

    /// `form team (number, handle, new_index=idx)`: as [`Self::form_team`]
    /// with an explicit 1-based index in the new team. All members of a
    /// subteam must then supply distinct indices 1..=m.
    pub fn form_team_with_index(&mut self, number: i64, new_index: usize) -> Team {
        self.form_team_inner(number, Some(new_index))
    }

    fn form_team_inner(&mut self, number: i64, new_index: Option<usize>) -> Team {
        let depth = self.team_depth() + 1;
        let t0 = self.trace_now();
        let comm = self.current_mut().comm.create_sub(number, new_index, None);
        self.trace(
            Event::span(EventKind::FormTeam, t0, self.trace_now().saturating_sub(t0))
                .a(comm.trace_tag())
                .b(comm.size() as u64)
                .c(number as u64),
        );
        Team {
            comm,
            number,
            depth,
        }
    }

    /// `change team (team) … end team`: run `body` with `team` as the
    /// current team. Synchronizes the team's members on entry and on exit
    /// (the implicit syncs of the Fortran construct) and returns the team
    /// handle back together with `body`'s result.
    pub fn change_team<R>(
        &mut self,
        mut team: Team,
        body: impl FnOnce(&mut Self) -> R,
    ) -> (Team, R) {
        let tag = team.comm.trace_tag();
        let t0 = self.trace_now();
        team.comm.barrier(); // implied sync at change team
        self.trace(
            Event::span(
                EventKind::ChangeTeam,
                t0,
                self.trace_now().saturating_sub(t0),
            )
            .a(tag),
        );
        self.teams.push(team);
        let out = body(self);
        let mut team = self.teams.pop().expect("team stack underflow");
        assert!(
            !self.teams.is_empty(),
            "change_team closed the initial team"
        );
        let t1 = self.trace_now();
        team.comm.barrier(); // implied sync at end team
        self.trace(Event::span(EventKind::EndTeam, t1, self.trace_now().saturating_sub(t1)).a(tag));
        (team, out)
    }

    // ------------------------------------------------------------------
    // Synchronization statements
    // ------------------------------------------------------------------

    /// `sync all`: barrier over the **current team** (Fortran 2015
    /// semantics), with the algorithm the team was formed with.
    pub fn sync_all(&mut self) {
        self.current_mut().comm.barrier();
    }

    /// `sync team (team)`: barrier over an arbitrary team handle.
    pub fn sync_team(&mut self, team: &mut Team) {
        team.comm.barrier();
    }

    /// `sync images (list)`: pairwise synchronization with the given
    /// current-team images (1-based). Every named image must execute a
    /// matching `sync_images` naming this image.
    pub fn sync_images(&mut self, images1: &[usize]) {
        let t0 = self.trace_now();
        let comm = &self.current().comm;
        let partners: Vec<ProcId> = images1
            .iter()
            .map(|&i| {
                assert!(
                    (1..=comm.size()).contains(&i),
                    "sync images: index {i} outside team of {}",
                    comm.size()
                );
                comm.proc_of(i - 1)
            })
            .collect();
        // Notify every partner first (its flag slot for *me*), then wait.
        for &p in &partners {
            if p == self.me {
                continue;
            }
            self.fabric
                .flag_add(self.me, p, self.sync_flags.nth(self.me.index()), 1);
        }
        for &p in &partners {
            if p == self.me {
                continue;
            }
            self.sync_count[p.index()] += 1;
            self.fabric.flag_wait_ge(
                self.me,
                self.sync_flags.nth(p.index()),
                self.sync_count[p.index()],
            );
        }
        self.trace(
            Event::span(
                EventKind::SyncImages,
                t0,
                self.trace_now().saturating_sub(t0),
            )
            .a(partners.len() as u64),
        );
    }

    /// `sync images (*)`: pairwise synchronization with **every** other
    /// image of the current team.
    pub fn sync_images_all(&mut self) {
        let all: Vec<usize> = (1..=self.num_images()).collect();
        self.sync_images(&all);
    }

    /// `sync memory`: complete my outstanding one-sided operations.
    pub fn sync_memory(&self) {
        let t0 = self.trace_now();
        self.fabric.quiet(self.me);
        self.trace(Event::span(
            EventKind::SyncMemory,
            t0,
            self.trace_now().saturating_sub(t0),
        ));
    }

    /// The Fortran `critical … end critical` construct: run `body` while
    /// holding a global mutual-exclusion lock (one per program, per the
    /// unnamed-critical semantics). Built on a remote compare-and-swap
    /// against a cell on image 1 of the initial team.
    ///
    /// Do not call collectives or other blocking synchronization inside the
    /// body — as in Fortran, that deadlocks.
    pub fn critical<R>(&mut self, body: impl FnOnce(&mut Self) -> R) -> R {
        let ticket = self.me.index() as u64 + 1;
        loop {
            let old = self.critical_lock.atomic_cas(1, CRITICAL_CELL, 0, ticket);
            if old == 0 {
                break;
            }
            // The fabric accounts each retry, so spinning advances virtual
            // time and the holder keeps making progress.
        }
        let out = body(self);
        let released = self.critical_lock.atomic_cas(1, CRITICAL_CELL, ticket, 0);
        assert_eq!(released, ticket, "critical lock corrupted");
        out
    }

    /// Gather `mine` from every image of the current team to
    /// `root_image` (1-based); the root receives the concatenation in team
    /// order, everyone else `None`.
    pub fn co_gather<T: CoValue>(&mut self, mine: &[T], root_image: usize) -> Option<Vec<T>> {
        let root = root_image.checked_sub(1).expect("root_image is 1-based");
        self.current_mut().comm.co_gather(mine, root)
    }

    /// Scatter from `root_image` (1-based): the root supplies
    /// `num_images()·out.len()` elements; image `i` receives slice `i-1`.
    pub fn co_scatter<T: CoValue>(&mut self, all: Option<&[T]>, out: &mut [T], root_image: usize) {
        let root = root_image.checked_sub(1).expect("root_image is 1-based");
        self.current_mut().comm.co_scatter(all, out, root);
    }

    /// All-to-all personalized exchange on the current team: `send` holds
    /// `num_images()` slices of `len` elements (slice `j` for image `j+1`);
    /// returns the received slices in image order — the distributed
    /// transpose.
    pub fn co_alltoall<T: CoValue>(&mut self, send: &[T], len: usize) -> Vec<T> {
        self.current_mut().comm.co_alltoall(send, len)
    }

    /// Gather `mine` from every image of the current team; returns the
    /// concatenation in team order (every image gets the same vector).
    /// All images must pass the same `mine.len()`.
    ///
    /// Not a Fortran intrinsic, but the utility every CAF application
    /// writes on day one; implemented with one-sided puts into a
    /// team-scoped coarray plus one barrier.
    pub fn co_allgather<T: CoValue>(&mut self, mine: &[T]) -> Vec<T> {
        let n = self.num_images();
        let len = mine.len();
        let co: Coarray<T> = self.coarray(n * len);
        let rank0 = self.this_image() - 1;
        for j in 1..=n {
            co.put(j, rank0 * len, mine);
        }
        self.sync_all();
        let mut out = co.read_local();
        self.sync_all(); // nobody reuses/frees before all have read
        debug_assert_eq!(out.len(), n * len);
        out.truncate(n * len);
        out
    }

    // ------------------------------------------------------------------
    // Collectives on the current team
    // ------------------------------------------------------------------

    /// `co_sum(a)`: element-wise sum over the current team, result on all
    /// images. (With `result_image` semantics, keep the value only where
    /// needed — the communication is an all-reduce either way here.)
    pub fn co_sum<T: CoNumeric>(&mut self, buf: &mut [T]) {
        self.current_mut().comm.co_sum(buf);
    }

    /// `co_min(a)`.
    pub fn co_min<T: CoNumeric>(&mut self, buf: &mut [T]) {
        self.current_mut().comm.co_min(buf);
    }

    /// `co_max(a)`.
    pub fn co_max<T: CoNumeric>(&mut self, buf: &mut [T]) {
        self.current_mut().comm.co_max(buf);
    }

    /// `co_reduce(a, op)` with a user operation (must be commutative and
    /// associative).
    pub fn co_reduce_with<T: CoValue>(&mut self, buf: &mut [T], f: impl Fn(T, T) -> T) {
        self.current_mut().comm.co_reduce_with(buf, f);
    }

    /// `co_broadcast(a, source_image)`: replicate `buf` from the 1-based
    /// `source_image` of the current team.
    pub fn co_broadcast<T: CoValue>(&mut self, buf: &mut [T], source_image: usize) {
        let root = source_image
            .checked_sub(1)
            .expect("source_image is 1-based");
        self.current_mut().comm.co_broadcast(buf, root);
    }

    // ------------------------------------------------------------------
    // Coarrays and events
    // ------------------------------------------------------------------

    /// Allocate a coarray of `elems` elements per image over the **current
    /// team** (the paper's memory benefit: allocation inside a `change
    /// team` block involves only that team's images). Collective.
    pub fn coarray<T: CoValue>(&mut self, elems: usize) -> Coarray<T> {
        Coarray::allocate(
            self.fabric.clone(),
            self.me,
            &mut self.current_mut().comm,
            elems,
        )
    }

    /// Allocate `count` event variables per image over the current team
    /// (CAF `event_type` coarray). Collective.
    pub fn events(&mut self, count: usize) -> Events {
        Events::allocate(
            self.fabric.clone(),
            self.me,
            &mut self.current_mut().comm,
            count,
        )
    }

    // ------------------------------------------------------------------
    // Fault tolerance: fallible collectives, shrinking team re-formation,
    // checkpoint/rollback
    // ------------------------------------------------------------------

    /// Run a synchronizing operation fallibly: a dead peer that would
    /// otherwise poison-panic this image becomes a catchable
    /// [`RecoveryError`]. The fabric is health-checked first so an already
    /// poisoned fabric fails fast without entering the collective.
    ///
    /// On `Err` the operation did not complete; in/out buffers may hold
    /// partial intermediate values and this image's collective state is
    /// unusable until [`Self::form_recovery_team`] rebuilds it.
    fn try_collective<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> Result<R, RecoveryError> {
        let fabric = self.fabric.clone();
        fabric.health()?;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(self)))
            .map_err(|payload| crate::recovery::panic_to_recovery(&fabric, payload))
    }

    /// Fallible [`Self::sync_all`]: `Err` instead of a poison panic when a
    /// peer died. The canonical failure-detection point of a
    /// recovery-aware program.
    pub fn try_sync_all(&mut self) -> Result<(), RecoveryError> {
        self.try_collective(|ctx| ctx.sync_all())
    }

    /// Fallible [`Self::co_sum`]. On `Err`, `buf` may hold a partial
    /// reduction — restore it from a checkpoint before resuming.
    pub fn try_co_sum<T: CoNumeric>(&mut self, buf: &mut [T]) -> Result<(), RecoveryError> {
        self.try_collective(|ctx| ctx.co_sum(buf))
    }

    /// Fallible [`Self::co_min`].
    pub fn try_co_min<T: CoNumeric>(&mut self, buf: &mut [T]) -> Result<(), RecoveryError> {
        self.try_collective(|ctx| ctx.co_min(buf))
    }

    /// Fallible [`Self::co_max`].
    pub fn try_co_max<T: CoNumeric>(&mut self, buf: &mut [T]) -> Result<(), RecoveryError> {
        self.try_collective(|ctx| ctx.co_max(buf))
    }

    /// Fallible [`Self::co_broadcast`].
    pub fn try_co_broadcast<T: CoValue>(
        &mut self,
        buf: &mut [T],
        source_image: usize,
    ) -> Result<(), RecoveryError> {
        self.try_collective(|ctx| ctx.co_broadcast(buf, source_image))
    }

    /// Fallible [`Self::co_gather`].
    pub fn try_co_gather<T: CoValue>(
        &mut self,
        mine: &[T],
        root_image: usize,
    ) -> Result<Option<Vec<T>>, RecoveryError> {
        self.try_collective(|ctx| ctx.co_gather(mine, root_image))
    }

    /// Re-form the initial team from exactly the surviving images after a
    /// peer death, with dense renumbering (`this_image()` = 1-based rank
    /// within the survivor set). Collective across **all survivors**: every
    /// surviving image must call it, typically after catching a
    /// [`RecoveryError`] from a `try_*` entry point.
    ///
    /// The call first heals the fabric (a survivor rendezvous that clears
    /// the poison, resets synchronization state, and bumps the fabric
    /// generation), then rebuilds this image's entire collective context
    /// over the survivors. **All pre-failure handles are invalidated**:
    /// coarrays, events, locks, and team handles allocated before the
    /// failure must not be used again. Re-allocate them in the same SPMD
    /// order on every survivor and refill from a checkpoint
    /// ([`Self::restore`] + [`Coarray::restore_local_bytes`]).
    ///
    /// Returns the size of the re-formed team.
    pub fn form_recovery_team(&mut self) -> Result<usize, RecoveryError> {
        // A dead image must never enter the heal rendezvous — it would be
        // counted against the survivor quorum.
        if !self.fabric.alive_images().contains(&self.me) {
            return Err(RecoveryError::HealFailed(format!(
                "image {} is not among the survivors",
                self.me.index() + 1
            )));
        }
        self.fabric.heal(self.me)?;
        let survivors = self.fabric.alive_images();
        // Identical re-allocation sequence on every survivor re-aligns
        // flag/segment ids exactly as at startup.
        let n = self.fabric.n_images();
        self.boot_epoch = 0;
        self.sync_flags = self.fabric.alloc_flags(self.me, n);
        self.sync_count = vec![0; n];
        let mut comm = TeamComm::create_among(
            self.fabric.clone(),
            self.me,
            survivors.clone(),
            self.default_cfg,
            &mut self.boot_epoch,
        );
        self.critical_lock = Coarray::allocate(self.fabric.clone(), self.me, &mut comm, 1);
        self.teams = vec![Team {
            comm,
            number: INITIAL_TEAM_NUMBER,
            depth: 0,
        }];
        // restore() re-establishes the agreed epoch; until then survivors
        // and rejoiners must not diverge on it.
        self.ckpt_epoch = 0;
        Ok(survivors.len())
    }

    /// Take checkpoint epoch `N+1` (one past the last completed/restored
    /// epoch) over the current team. Collective. The protocol:
    ///
    /// 1. **Fence**: `sync memory` + `sync all`, so no one-sided traffic is
    ///    in flight and every image's segments are quiescent;
    /// 2. `snapshot(self)` captures this image's payloads (typically
    ///    [`Coarray::local_bytes`] of each registered coarray) — called
    ///    only after the fence, so the bytes are the fenced state;
    /// 3. atomic local commit into `store` (temp file + rename when
    ///    file-backed);
    /// 4. completion barrier.
    ///
    /// A node dying anywhere in this sequence leaves each store either
    /// without the epoch or with it complete — never torn. The epoch is
    /// only counted as this image's latest after step 3, and only counted
    /// *globally* complete when every team member committed it, which
    /// [`Self::restore`] resolves with a `co_min`.
    pub fn checkpoint(
        &mut self,
        store: &CheckpointStore,
        snapshot: impl FnOnce(&mut Self) -> Vec<Vec<u8>>,
    ) -> Result<u64, RecoveryError> {
        let epoch = self.ckpt_epoch + 1;
        let img = self.me.index();
        let payloads = self.try_collective(|ctx| {
            ctx.sync_memory();
            ctx.sync_all();
            snapshot(ctx)
        })?;
        store
            .commit(img, epoch, &payloads)
            .map_err(|e| RecoveryError::HealFailed(format!("checkpoint commit failed: {e}")))?;
        self.try_collective(|ctx| ctx.sync_all())?;
        self.ckpt_epoch = epoch;
        Ok(epoch)
    }

    /// Roll back to the last **globally complete** checkpoint epoch.
    /// Collective over the current team (after a failure: the recovery
    /// team). Each member reports `latest_committed + 1` (0 = none); a
    /// `co_min` resolves the largest epoch *every* member committed —
    /// epochs some-but-not-all members committed (a death mid-checkpoint)
    /// are thereby discarded, never half-restored.
    ///
    /// Returns `Ok(None)` when no epoch is globally complete (restart from
    /// initial state), else `Ok(Some((epoch, payloads)))` with this image's
    /// own snapshot payloads in the order `snapshot` produced them. Apply
    /// them (e.g. [`Coarray::restore_local_bytes`]) and then
    /// [`Self::try_sync_all`] before resuming, so every image re-enters the
    /// epoch together.
    pub fn restore(
        &mut self,
        store: &CheckpointStore,
    ) -> Result<Option<(u64, crate::recovery::SnapshotPayloads)>, RecoveryError> {
        let img = self.me.index();
        let mut probe = [store.latest_committed(img).map_or(0, |e| e + 1)];
        self.try_collective(|ctx| ctx.co_min(&mut probe))?;
        let agreed = probe[0];
        if agreed == 0 {
            self.ckpt_epoch = 0;
            return Ok(None);
        }
        let epoch = agreed - 1;
        let payloads = store.load(img, epoch).ok_or_else(|| {
            RecoveryError::HealFailed(format!(
                "image {}: epoch {epoch} resolved globally complete but is missing locally",
                img + 1
            ))
        })?;
        self.ckpt_epoch = epoch;
        Ok(Some((epoch, payloads)))
    }

    /// Run `body` with automatic shrink-and-retry recovery: on a
    /// [`RecoveryError`] (returned *or* panicked — local coarray accesses
    /// that hit a poisoned fabric panic rather than return `Err`), the
    /// initial team is re-formed over the survivors and `body` restarted
    /// from the top, up to `max_recoveries` times.
    ///
    /// `body` must be written restartably: allocate its coarrays first (in
    /// the same SPMD order each attempt), then [`Self::restore`] from the
    /// checkpoint store to decide whether to roll back or initialize. A
    /// dead image's call fails fast with `HealFailed` without joining the
    /// survivor rendezvous.
    pub fn recovering<R>(
        &mut self,
        max_recoveries: usize,
        body: impl Fn(&mut Self) -> Result<R, RecoveryError>,
    ) -> Result<R, RecoveryError> {
        let mut recoveries = 0;
        loop {
            let fabric = self.fabric.clone();
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(self)))
                .unwrap_or_else(|payload| {
                    Err(crate::recovery::panic_to_recovery(&fabric, payload))
                });
            match attempt {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if recoveries >= max_recoveries {
                        return Err(e);
                    }
                    recoveries += 1;
                    self.form_recovery_team()?;
                }
            }
        }
    }

    /// Last checkpoint epoch this image completed or restored (0 = none).
    pub fn checkpoint_epoch(&self) -> u64 {
        self.ckpt_epoch
    }

    /// This fabric's recovery generation: 0 at first launch, bumped by
    /// every successful heal. Collectively meaningful after
    /// [`Self::form_recovery_team`].
    pub fn generation(&self) -> u64 {
        self.fabric.generation()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Fabric clock for runtime-statement spans, or 0 when tracing is off.
    fn trace_now(&self) -> u64 {
        if self.fabric.tracer().enabled() {
            self.fabric.now_ns(self.me)
        } else {
            0
        }
    }

    /// Record a runtime-statement trace event on this image's ring.
    fn trace(&self, ev: Event) {
        self.fabric.tracer().record(self.me.index(), ev);
    }

    fn current(&self) -> &Team {
        self.teams.last().expect("team stack never empty")
    }

    fn current_mut(&mut self) -> &mut Team {
        self.teams.last_mut().expect("team stack never empty")
    }

    /// My global process id (crate-internal plumbing).
    pub(crate) fn proc(&self) -> ProcId {
        self.me
    }

    /// The current team's communication structure (crate-internal).
    pub(crate) fn current_comm_mut(&mut self) -> &mut TeamComm {
        &mut self.current_mut().comm
    }

    /// Default collective configuration of this run (inherited by teams).
    pub fn collective_config(&self) -> CollectiveConfig {
        self.default_cfg
    }
}
