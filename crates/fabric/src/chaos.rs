//! Seeded chaos scheduling and fault injection for [`SimFabric`](crate::SimFabric).
//!
//! The simulator's conservative discipline makes every run deterministic —
//! which is exactly why a single run explores a single interleaving. A
//! [`ChaosConfig`] perturbs the *cost model* (never the semantics) so that
//! the virtual-time commit order, and with it the observable interleaving
//! of one-sided operations, varies per seed while each seed remains fully
//! reproducible:
//!
//! * **CPU jitter** — every fabric call charges the calling image a hashed
//!   extra delay, shifting whole images forward/backward relative to each
//!   other (the main source of schedule diversity).
//! * **Network jitter** — every scheduled event (flag arrival, NIC landing)
//!   is delayed by a hashed amount, perturbing delivery order.
//! * **Reordering / PCT-style priorities** — exact virtual-time ties
//!   between events and between runnable images are broken by hashed
//!   priorities instead of sequence number / rank, optionally reshuffled
//!   every `pct_interval` commits (priority-based concurrency testing).
//!   Ties only: virtual time stays the primary sort key, so the
//!   conservative scheduler can never livelock.
//! * **Faults** — a stalled image (every op pays a large fixed delay), a
//!   slow node (every image on it pays extra), delayed and duplicated
//!   nonblocking-put completions. All faults are finite extra *time*, so
//!   every fault run of a terminating program terminates; the existing
//!   deadlock detector converts genuine hangs into panics.
//!
//! Determinism: all randomness is a pure function of `(seed, stream,
//! counters)` via a SplitMix64-style mixer — there is no shared RNG whose
//! draw order could depend on OS thread scheduling. The per-image op
//! counter and the event sequence number are themselves deterministic, so
//! the whole perturbed schedule is a function of the seed.
//!
//! Semantics are preserved for correctly synchronized programs: payloads
//! are still copied at the writer's commit and flag deliveries still
//! happen after that commit, so a reader that waits for the right flag
//! threshold always sees the data it synchronized on. What chaos *does*
//! expose is programs that wait on the wrong threshold (stale cumulative
//! counters, missing fences): their reads can now commit before the
//! writer's put in virtual time and observe stale bytes.

/// SplitMix64 finalizer — a cheap, well-distributed 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Chaos-scheduling knobs for [`SimConfig`](crate::SimConfig). All fields
/// public so harnesses (and shrinkers) can tweak them individually;
/// [`ChaosConfig::from_seed`] derives a diverse full configuration from a
/// single replayable `u64`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Root of all derived randomness.
    pub seed: u64,
    /// Max extra ns charged to an image per fabric call (0 = off).
    pub cpu_jitter_ns: u64,
    /// Max extra ns added to each scheduled event's delivery (0 = off).
    pub net_jitter_ns: u64,
    /// Break exact virtual-time ties (events and runnable images) by
    /// hashed priority instead of FIFO/rank order.
    pub reorder: bool,
    /// Reshuffle the per-image tie-break priorities every this many
    /// committed operations (0 = fixed priorities for the whole run).
    /// Only meaningful with `reorder`.
    pub pct_interval: u64,
    /// Fault: this image pays `stall_ns` extra on every fabric call
    /// (models a descheduled / oversubscribed slave image).
    pub stalled_image: Option<usize>,
    /// Extra ns per op for the stalled image.
    pub stall_ns: u64,
    /// Fault: every image on this node pays `slow_node_ns` extra per op
    /// (models a slow node leader and its whole node).
    pub slow_node: Option<usize>,
    /// Extra ns per op for images on the slow node.
    pub slow_node_ns: u64,
    /// Fault: inter-node nonblocking-put landings (their completions) are
    /// delayed by this many ns beyond the modeled wire time.
    pub completion_delay_ns: u64,
    /// Fault: every inter-node nonblocking put also triggers a duplicate,
    /// stats-neutral landing (a NIC-level retransmission) one gap later.
    pub duplicate_completions: bool,
    /// Fault: image `.0` dies at its `.1`-th fabric call — the simulator's
    /// deterministic analogue of a node crash. The victim is retired from
    /// scheduling (as by `image_done`) and the fabric is poisoned so
    /// survivors observe a catchable failure; a recovery-aware program then
    /// heals the fabric and re-forms on the surviving images. Keyed by the
    /// per-image op counter, so one seed names the exact kill point and
    /// `CAF_CHECK_SEED` replay reproduces recovery failures bit-for-bit.
    pub kill_image_at: Option<(usize, u64)>,
}

impl ChaosConfig {
    /// A quiet baseline: chaos machinery installed but every knob off.
    /// With this config the schedule equals the default scheduler's.
    pub fn off(seed: u64) -> Self {
        Self {
            seed,
            cpu_jitter_ns: 0,
            net_jitter_ns: 0,
            reorder: false,
            pct_interval: 0,
            stalled_image: None,
            stall_ns: 0,
            slow_node: None,
            slow_node_ns: 0,
            completion_delay_ns: 0,
            duplicate_completions: false,
            kill_image_at: None,
        }
    }

    /// The canonical seed → configuration map used by the `caf-check`
    /// harness and `CAF_CHECK_SEED` replay: jitter amplitudes, reordering,
    /// and the PCT interval all derive from the seed, so one `u64` names
    /// the entire perturbed schedule. No faults — harnesses layer those
    /// explicitly (see `caf-check`).
    pub fn from_seed(seed: u64) -> Self {
        let m = splitmix64(seed ^ 0xC4A5_C4A5);
        Self {
            seed,
            cpu_jitter_ns: [50, 400, 2_000, 10_000][(m % 4) as usize],
            net_jitter_ns: [0, 300, 1_500, 20_000][((m >> 8) % 4) as usize],
            reorder: true,
            pct_interval: [0, 7, 31][((m >> 16) % 3) as usize],
            ..Self::off(seed)
        }
    }

    /// Hash of `(seed, stream, a, b)` — the only randomness primitive.
    fn mix(&self, stream: u64, a: u64, b: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(stream ^ splitmix64(a) ^ splitmix64(b).rotate_left(32)))
    }

    /// Extra ns charged to image `img` (on `node`) for its `op`-th fabric
    /// call: cpu jitter plus any stall / slow-node fault surcharge.
    pub(crate) fn op_delay(&self, img: usize, node: usize, op: u64) -> u64 {
        let mut extra = 0;
        if self.cpu_jitter_ns > 0 {
            extra += self.mix(1, img as u64, op) % (self.cpu_jitter_ns + 1);
        }
        if self.stalled_image == Some(img) {
            extra += self.stall_ns;
        }
        if self.slow_node == Some(node) {
            extra += self.slow_node_ns;
        }
        extra
    }

    /// Extra delivery delay for the event with sequence number `seq`.
    pub(crate) fn event_delay(&self, seq: u64) -> u64 {
        if self.net_jitter_ns == 0 {
            return 0;
        }
        self.mix(2, seq, 0) % (self.net_jitter_ns + 1)
    }

    /// Tie-break key for the event with sequence number `seq` (0 when
    /// reordering is off, reducing to FIFO order among same-time events).
    pub(crate) fn event_tiebreak(&self, seq: u64) -> u64 {
        if self.reorder {
            self.mix(3, seq, 0)
        } else {
            0
        }
    }

    /// PCT-style priority of image `img` during reshuffle `epoch`.
    pub(crate) fn image_priority(&self, epoch: u64, img: usize) -> u64 {
        if self.reorder {
            self.mix(4, epoch, img as u64)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_values_are_pure_functions_of_the_seed() {
        let a = ChaosConfig::from_seed(42);
        let b = ChaosConfig::from_seed(42);
        assert_eq!(a, b);
        for op in 0..10 {
            assert_eq!(a.op_delay(3, 0, op), b.op_delay(3, 0, op));
            assert_eq!(a.event_delay(op), b.event_delay(op));
            assert_eq!(a.event_tiebreak(op), b.event_tiebreak(op));
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = ChaosConfig::from_seed(1);
        let b = ChaosConfig::from_seed(2);
        let differs = (0..64).any(|op| {
            a.op_delay(0, 0, op) != b.op_delay(0, 0, op)
                || a.event_tiebreak(op) != b.event_tiebreak(op)
        });
        assert!(differs, "seeds 1 and 2 produced identical perturbations");
    }

    #[test]
    fn off_config_perturbs_nothing() {
        let c = ChaosConfig::off(99);
        for op in 0..16 {
            assert_eq!(c.op_delay(0, 0, op), 0);
            assert_eq!(c.event_delay(op), 0);
            assert_eq!(c.event_tiebreak(op), 0);
            assert_eq!(c.image_priority(op, 0), 0);
        }
    }

    #[test]
    fn fault_surcharges_apply_to_the_right_images() {
        let c = ChaosConfig {
            stalled_image: Some(2),
            stall_ns: 500,
            slow_node: Some(1),
            slow_node_ns: 70,
            ..ChaosConfig::off(7)
        };
        assert_eq!(c.op_delay(2, 0, 0), 500);
        assert_eq!(c.op_delay(0, 1, 0), 70);
        assert_eq!(c.op_delay(2, 1, 0), 570);
        assert_eq!(c.op_delay(0, 0, 0), 0);
    }
}
