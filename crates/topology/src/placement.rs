//! Image placement: which core does each SPMD image run on?
//!
//! A launch of `n` images onto a [`MachineModel`] produces an [`ImageMap`],
//! the structure the runtime's `team_type` consults to split any team into
//! intranode sets (paper §IV-A). Placement policies mirror the launchers used
//! in the paper's evaluation: *packed* (fill each node before moving on —
//! "8 images per node"), *block* with an explicit per-node count, *cyclic*
//! (round-robin over nodes — "1 image per node" up to 44 images), and fully
//! *custom* maps.

use crate::ids::{NodeId, ProcId};
use crate::machine::{CoreLocation, MachineModel};
use serde::{Deserialize, Serialize};

/// A placement policy, turned into an [`ImageMap`] by [`ImageMap::new`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Fill node 0's cores first, then node 1's, … (SLURM `--distribution=block`).
    Packed,
    /// Exactly `per_node` images on each node, in node order.
    Block {
        /// Images placed on each node before moving to the next.
        per_node: usize,
    },
    /// Image `i` goes to node `i mod nodes` (SLURM `--distribution=cyclic`).
    Cyclic,
    /// Explicit image → global core index map.
    Custom(Vec<usize>),
}

/// The realized image → location map for one launch, plus the reverse
/// node → images index the hierarchy-aware runtime needs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageMap {
    machine: MachineModel,
    locs: Vec<CoreLocation>,
    node_members: Vec<Vec<ProcId>>,
}

impl ImageMap {
    /// Place `n_images` on `machine` according to `placement`.
    ///
    /// # Panics
    /// Panics if the placement would oversubscribe a core (two images on the
    /// same core) or reference a core outside the machine, or if `n_images`
    /// is zero.
    pub fn new(machine: MachineModel, n_images: usize, placement: &Placement) -> Self {
        assert!(n_images > 0, "cannot place zero images");
        let total = machine.total_cores();
        assert!(
            n_images <= total,
            "{n_images} images oversubscribe {total} cores of machine `{}`",
            machine.name
        );
        let global_cores: Vec<usize> = match placement {
            Placement::Packed => (0..n_images).collect(),
            Placement::Block { per_node } => {
                assert!(*per_node > 0, "Block placement needs per_node >= 1");
                assert!(
                    *per_node <= machine.cores_per_node(),
                    "per_node {} exceeds {} cores per node",
                    per_node,
                    machine.cores_per_node()
                );
                let nodes_needed = n_images.div_ceil(*per_node);
                assert!(
                    nodes_needed <= machine.nodes,
                    "Block {{ per_node: {per_node} }} needs {nodes_needed} nodes, machine has {}",
                    machine.nodes
                );
                (0..n_images)
                    .map(|i| {
                        let node = i / per_node;
                        let slot = i % per_node;
                        node * machine.cores_per_node() + slot
                    })
                    .collect()
            }
            Placement::Cyclic => {
                let cpn = machine.cores_per_node();
                (0..n_images)
                    .map(|i| {
                        let node = i % machine.nodes;
                        let slot = i / machine.nodes;
                        assert!(
                            slot < cpn,
                            "cyclic placement wrapped past {} cores on node {node}",
                            cpn
                        );
                        node * cpn + slot
                    })
                    .collect()
            }
            Placement::Custom(map) => {
                assert_eq!(
                    map.len(),
                    n_images,
                    "custom placement has {} entries for {n_images} images",
                    map.len()
                );
                map.clone()
            }
        };

        // Reject double-booked cores.
        let mut seen = vec![false; total];
        for (i, &g) in global_cores.iter().enumerate() {
            assert!(g < total, "image {i} placed on nonexistent core {g}");
            assert!(!seen[g], "two images placed on global core {g}");
            seen[g] = true;
        }

        let locs: Vec<CoreLocation> = global_cores
            .iter()
            .map(|&g| machine.locate_global_core(g))
            .collect();
        let mut node_members = vec![Vec::new(); machine.nodes];
        for (i, loc) in locs.iter().enumerate() {
            node_members[loc.node.index()].push(ProcId(i));
        }
        Self {
            machine,
            locs,
            node_members,
        }
    }

    /// Number of images in this launch.
    #[inline]
    pub fn n_images(&self) -> usize {
        self.locs.len()
    }

    /// The machine the images run on.
    #[inline]
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Hardware location of an image.
    #[inline]
    pub fn location(&self, p: ProcId) -> CoreLocation {
        self.locs[p.index()]
    }

    /// Node an image runs on.
    #[inline]
    pub fn node_of(&self, p: ProcId) -> NodeId {
        self.locs[p.index()].node
    }

    /// All images resident on `node`, in rank order.
    #[inline]
    pub fn images_on_node(&self, node: NodeId) -> &[ProcId] {
        &self.node_members[node.index()]
    }

    /// True when `a` and `b` share a node (can use the intra-node strategy).
    #[inline]
    pub fn colocated(&self, a: ProcId, b: ProcId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// True when `a` and `b` share a socket within a node (the finer level of
    /// the multi-level extension).
    #[inline]
    pub fn same_socket(&self, a: ProcId, b: ProcId) -> bool {
        self.machine
            .same_socket(self.locs[a.index()], self.locs[b.index()])
    }

    /// Number of distinct nodes that host at least one image.
    pub fn occupied_nodes(&self) -> usize {
        self.node_members.iter().filter(|m| !m.is_empty()).count()
    }

    /// Largest number of images sharing one node.
    pub fn max_images_per_node(&self) -> usize {
        self.node_members.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn whale() -> MachineModel {
        MachineModel::new("whale", 44, 2, 4)
    }

    #[test]
    fn packed_fills_nodes_in_order() {
        let m = ImageMap::new(whale(), 20, &Placement::Packed);
        assert_eq!(m.node_of(ProcId(0)), NodeId(0));
        assert_eq!(m.node_of(ProcId(7)), NodeId(0));
        assert_eq!(m.node_of(ProcId(8)), NodeId(1));
        assert_eq!(m.node_of(ProcId(19)), NodeId(2));
        assert_eq!(m.occupied_nodes(), 3);
        assert_eq!(m.max_images_per_node(), 8);
    }

    #[test]
    fn block_8_per_node_matches_paper_launch() {
        // The paper's dense launch: 8 images per node, e.g. 64 images on 8 nodes.
        let m = ImageMap::new(whale(), 64, &Placement::Block { per_node: 8 });
        assert_eq!(m.occupied_nodes(), 8);
        for node in 0..8 {
            assert_eq!(m.images_on_node(NodeId(node)).len(), 8);
        }
        assert!(m.colocated(ProcId(0), ProcId(7)));
        assert!(!m.colocated(ProcId(7), ProcId(8)));
    }

    #[test]
    fn block_2_per_node() {
        // 16 images on 8 nodes = the paper's 16(8)-style sparse config.
        let m = ImageMap::new(whale(), 16, &Placement::Block { per_node: 2 });
        assert_eq!(m.occupied_nodes(), 8);
        assert_eq!(m.max_images_per_node(), 2);
        assert!(m.colocated(ProcId(0), ProcId(1)));
        assert!(!m.colocated(ProcId(1), ProcId(2)));
    }

    #[test]
    fn cyclic_one_per_node_until_wrap() {
        // The paper's flat launch: 1 image per node (n <= 44).
        let m = ImageMap::new(whale(), 44, &Placement::Cyclic);
        assert_eq!(m.occupied_nodes(), 44);
        assert_eq!(m.max_images_per_node(), 1);
        for i in 0..44 {
            assert_eq!(m.node_of(ProcId(i)), NodeId(i));
        }
    }

    #[test]
    fn cyclic_wraps_to_second_core() {
        let m = ImageMap::new(whale(), 50, &Placement::Cyclic);
        assert_eq!(m.node_of(ProcId(44)), NodeId(0));
        assert_eq!(m.max_images_per_node(), 2);
        assert!(m.colocated(ProcId(0), ProcId(44)));
    }

    #[test]
    fn custom_placement_roundtrip() {
        let mach = whale();
        // Reverse the packed order of 10 images.
        let cores: Vec<usize> = (0..10).rev().collect();
        let m = ImageMap::new(mach.clone(), 10, &Placement::Custom(cores));
        assert_eq!(m.node_of(ProcId(0)), NodeId(1)); // core 9 is on node 1
        assert_eq!(m.node_of(ProcId(9)), NodeId(0));
        assert_eq!(m.n_images(), 10);
    }

    #[test]
    fn node_members_in_rank_order() {
        let m = ImageMap::new(whale(), 16, &Placement::Block { per_node: 8 });
        let members = m.images_on_node(NodeId(1));
        assert_eq!(
            members,
            &(8..16).map(ProcId).collect::<Vec<_>>()[..],
            "node members must be sorted by rank"
        );
    }

    #[test]
    fn same_socket_distinction() {
        let m = ImageMap::new(whale(), 8, &Placement::Packed);
        assert!(m.same_socket(ProcId(0), ProcId(3)));
        assert!(!m.same_socket(ProcId(3), ProcId(4)));
        assert!(m.colocated(ProcId(3), ProcId(4)));
    }

    #[test]
    #[should_panic(expected = "oversubscribe")]
    fn oversubscription_rejected() {
        ImageMap::new(MachineModel::new("tiny", 1, 1, 2), 3, &Placement::Packed);
    }

    #[test]
    #[should_panic(expected = "two images placed on global core")]
    fn double_booking_rejected() {
        ImageMap::new(whale(), 2, &Placement::Custom(vec![5, 5]));
    }

    #[test]
    #[should_panic(expected = "needs 9 nodes")]
    fn block_needs_enough_nodes() {
        ImageMap::new(
            MachineModel::new("small", 8, 2, 8),
            65,
            &Placement::Block { per_node: 8 },
        );
    }
}
