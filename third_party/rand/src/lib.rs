//! Offline shim for the tiny `rand` surface some manifests declare.
//! Backed by SplitMix64 — deterministic, seedable, not cryptographic.

use std::ops::Range;

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

pub trait SampleUniform: Sized {
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                let span = (range.end as i128 - range.start as i128) as u128;
                assert!(span > 0, "empty range");
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

pub mod rngs {
    pub type StdRng = super::SplitMix64;
    pub type SmallRng = super::SplitMix64;
    pub type ThreadRng = super::SplitMix64;
}

/// Non-cryptographic stand-in for `rand::thread_rng` (seeded from the
/// current time and thread, not an OS entropy source).
pub fn thread_rng() -> rngs::ThreadRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(nanos ^ 0xA076_1D64_78BD_642F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(3usize..17);
            assert_eq!(x, b.gen_range(3usize..17));
            assert!((3..17).contains(&x));
        }
        let f = a.gen_range(-1.0f64..1.0);
        assert!((-1.0..1.0).contains(&f));
    }
}
