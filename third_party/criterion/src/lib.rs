//! Offline shim for the `criterion` API subset used by this workspace.
//! It runs each benchmark closure a warm-up pass plus a small timed batch
//! and prints mean ns/iteration — honest wall-clock numbers without the
//! statistical machinery of real criterion.

use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            samples: 10,
            _marker: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), 10, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.samples, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        iters: samples.clamp(1, 10) as u64,
        total_ns: 0,
        total_iters: 0,
    };
    f(&mut b);
    let mean = if b.total_iters > 0 {
        b.total_ns as f64 / b.total_iters as f64
    } else {
        f64::NAN
    };
    eprintln!("  {id}: {mean:.0} ns/iter ({} iters)", b.total_iters);
}

pub struct Bencher {
    iters: u64,
    total_ns: u128,
    total_iters: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total_ns += start.elapsed().as_nanos();
        self.total_iters += self.iters;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bencher_times_closure() {
        let mut c = crate::Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("incr", |b| b.iter(|| count += 1));
        g.finish();
        assert!(count > 0);
    }
}
