//! The Teams Microbenchmark suite as a standalone tool, mirroring the
//! paper's published suite: barrier / reduction / broadcast / team-
//! formation latency on a simulated cluster, for any image count,
//! placement density, stack, and algorithm family.
//!
//! ```text
//! teams_micro [images] [per_node] [one_level|two_level|auto] [iters]
//! cargo run -p caf-microbench --bin teams_micro -- 64 8 two_level 10
//! ```

use caf_microbench::{
    allreduce_latency, barrier_latency, broadcast_latency, form_team_latency,
    overlapped_reduce_latency, report, MicroConfig, Table,
};
use caf_runtime::CollectiveConfig;
use caf_topology::presets;

fn usage() -> ! {
    eprintln!("usage: teams_micro [images] [per_node] [one_level|two_level|auto] [iters]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let images: usize = args
        .first()
        .map_or(64, |v| v.parse().unwrap_or_else(|_| usage()));
    let per_node: usize = args
        .get(1)
        .map_or(8, |v| v.parse().unwrap_or_else(|_| usage()));
    let (cfg_name, collectives) = match args.get(2).map(String::as_str) {
        None | Some("auto") => ("auto", CollectiveConfig::auto()),
        Some("one_level") => ("one_level", CollectiveConfig::one_level()),
        Some("two_level") => ("two_level", CollectiveConfig::two_level()),
        Some(_) => usage(),
    };
    let iters: usize = args
        .get(3)
        .map_or(10, |v| v.parse().unwrap_or_else(|_| usage()));

    let machine = presets::whale();
    assert!(
        images <= machine.total_cores(),
        "whale has {} cores",
        machine.total_cores()
    );
    let mut mc = MicroConfig::whale(images, per_node).with_collectives(collectives);
    mc.iters = iters;

    println!(
        "Teams Microbenchmark suite — {images} images, {per_node}/node, {cfg_name} collectives, \
         {iters} iters (modeled whale cluster)"
    );
    let mut t = Table::new(
        "collective latency (modeled us)",
        &["benchmark", "latency_us"],
    );
    t.row(&["barrier".into(), report::us(barrier_latency(&mc).ns_per_op)]);
    for elems in [1usize, 128, 4096] {
        t.row(&[
            format!("co_sum[{elems}]"),
            report::us(allreduce_latency(&mc, elems).ns_per_op),
        ]);
    }
    for elems in [1usize, 128, 4096] {
        t.row(&[
            format!("co_broadcast[{elems}]"),
            report::us(broadcast_latency(&mc, elems).ns_per_op),
        ]);
    }
    t.row(&[
        "form_team(2)+sync".into(),
        report::us(form_team_latency(&mc, 2).ns_per_op),
    ]);
    t.row(&[
        "overlapped half-team co_sum[8]".into(),
        report::us(overlapped_reduce_latency(&mc, 8).ns_per_op),
    ]);
    t.print();
}
