//! A sharded event queue: per-node lazy heaps under a small min-heap of
//! node frontiers, with arena-allocated payloads.
//!
//! The pre-scale simulator kept every in-flight event in one global
//! `BinaryHeap`, so each push/pop paid `O(log total_events)` on a heap
//! whose arbitrary-order guts defeat the cache at fleet scale. Events are
//! naturally partitioned by *destination node* (a flag arrival belongs to
//! its target image's node, a NIC landing to its node), so this queue
//! keeps one small heap per node and a second "frontier" heap holding one
//! candidate entry per non-empty node — calendar-queue style. The global
//! minimum is the minimum over node frontiers; popping costs
//! `O(log per_node_events + log nodes)` and the per-node heaps stay small
//! and hot.
//!
//! The frontier is **lazy**: entries are only *added* (when a push lowers
//! a node's minimum, or a pop exposes a new one) and stale entries are
//! discarded on the way out by checking them against the node's current
//! head. Payloads live in a slab arena with a free list, so the heaps
//! themselves move only 24-byte `(key, slot)` pairs and event records are
//! recycled instead of churning the allocator.
//!
//! # Ordering contract
//!
//! Pops come out in ascending [`EvKey`] = `(time, tie, seq)` order —
//! exactly the order of the reference global `BinaryHeap<Reverse<Ev>>`.
//! `seq` is unique per event, which makes keys totally ordered; the
//! differential proptest in `tests/evq_differential.rs` holds this queue
//! to the reference implementation under random interleavings, including
//! chaos tie-breaks.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total-order key of a simulator event: virtual due `time`, the chaos
/// `tie` (0 under the default scheduler, a hashed priority under chaos
/// reordering), and the globally unique push sequence number `seq`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EvKey {
    /// Virtual time at which the event comes due.
    pub time: u64,
    /// Same-time tie-break (chaos reordering); 0 = FIFO by `seq`.
    pub tie: u64,
    /// Unique, monotonically assigned push sequence number.
    pub seq: u64,
}

/// The sharded event queue; see the module docs. Generic over the payload
/// so the differential tests can drive it with plain markers.
#[derive(Debug)]
pub struct ShardedEvq<T> {
    /// One lazy min-heap per destination node: `(key, arena slot)`.
    shards: Vec<BinaryHeap<Reverse<(EvKey, u32)>>>,
    /// Candidate minima: `(node's head key at insert time, node)`. May
    /// hold stale entries; they are discarded against the shard head on
    /// pop/peek.
    frontier: BinaryHeap<Reverse<(EvKey, usize)>>,
    /// Arena of payloads; `None` = free slot.
    slots: Vec<Option<T>>,
    /// Recycled arena slots.
    free: Vec<u32>,
    len: usize,
}

impl<T> ShardedEvq<T> {
    /// An empty queue with `shards` destination nodes.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| BinaryHeap::new()).collect(),
            frontier: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no event is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue `payload` for `shard` at `key`. Keys must be unique (the
    /// simulator's `seq` guarantees this).
    pub fn push(&mut self, shard: usize, key: EvKey, payload: T) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(payload);
                s
            }
            None => {
                self.slots.push(Some(payload));
                (self.slots.len() - 1) as u32
            }
        };
        let sh = &mut self.shards[shard];
        // Only a new per-node minimum needs a frontier entry; anything
        // else is exposed later by the pop that uncovers it.
        let new_min = sh.peek().is_none_or(|Reverse((head, _))| key < *head);
        sh.push(Reverse((key, slot)));
        if new_min {
            self.frontier.push(Reverse((key, shard)));
        }
        self.len += 1;
    }

    /// Discard stale frontier entries until the top is a live per-node
    /// head (or the frontier is empty). Returns that top.
    fn settle(&mut self) -> Option<(EvKey, usize)> {
        while let Some(&Reverse((key, shard))) = self.frontier.peek() {
            let head = self.shards[shard].peek().map(|Reverse((k, _))| *k);
            if head == Some(key) {
                return Some((key, shard));
            }
            self.frontier.pop();
        }
        None
    }

    /// The key of the globally minimal event, without removing it.
    pub fn peek_key(&mut self) -> Option<EvKey> {
        self.settle().map(|(key, _)| key)
    }

    /// Remove and return the globally minimal event.
    pub fn pop(&mut self) -> Option<(EvKey, T)> {
        let (key, shard) = self.settle()?;
        self.frontier.pop();
        let Reverse((_, slot)) = self.shards[shard].pop().expect("settled head");
        if let Some(Reverse((next, _))) = self.shards[shard].peek() {
            // Expose the uncovered per-node head as a frontier candidate.
            self.frontier.push(Reverse((*next, shard)));
        }
        let payload = self.slots[slot as usize].take().expect("live slot");
        self.free.push(slot);
        self.len -= 1;
        Some((key, payload))
    }

    /// Drop every queued event (recovery reset). Arena capacity is kept.
    pub fn clear(&mut self) {
        for sh in &mut self.shards {
            sh.clear();
        }
        self.frontier.clear();
        self.slots.clear();
        self.free.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosConfig;

    #[test]
    fn pops_in_global_key_order_across_shards() {
        let mut q = ShardedEvq::new(4);
        let mut seq = 0u64;
        let mut push = |q: &mut ShardedEvq<u64>, shard: usize, time: u64| {
            q.push(
                shard,
                EvKey { time, tie: 0, seq },
                time * 1000 + shard as u64,
            );
            seq += 1;
        };
        for (shard, time) in [(0, 50), (1, 10), (2, 30), (3, 10), (0, 5), (1, 70)] {
            push(&mut q, shard, time);
        }
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(k, _)| k.time)).collect();
        assert_eq!(times, vec![5, 10, 10, 30, 50, 70]);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_order_by_tie_then_seq() {
        let mut q = ShardedEvq::new(2);
        q.push(
            0,
            EvKey {
                time: 9,
                tie: 2,
                seq: 0,
            },
            "late-tie",
        );
        q.push(
            1,
            EvKey {
                time: 9,
                tie: 0,
                seq: 2,
            },
            "fifo-second",
        );
        q.push(
            1,
            EvKey {
                time: 9,
                tie: 0,
                seq: 1,
            },
            "fifo-first",
        );
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["fifo-first", "fifo-second", "late-tie"]);
    }

    #[test]
    fn arena_recycles_slots() {
        let mut q = ShardedEvq::new(1);
        for round in 0..10u64 {
            for k in 0..8u64 {
                q.push(
                    0,
                    EvKey {
                        time: k,
                        tie: 0,
                        seq: round * 8 + k,
                    },
                    k,
                );
            }
            while q.pop().is_some() {}
        }
        assert!(
            q.slots.len() <= 8,
            "arena grew past the high-water mark: {}",
            q.slots.len()
        );
    }

    #[test]
    fn interleaved_push_pop_matches_reference_heap_under_chaos_keys() {
        // Drive both queues with the *actual* chaos key derivation
        // (event_delay + event_tiebreak), interleaving pushes and pops.
        let ch = ChaosConfig::from_seed(1234);
        let mut q: ShardedEvq<u64> = ShardedEvq::new(8);
        let mut reference: BinaryHeap<Reverse<(EvKey, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut s: u64 = 77;
        let mut rnd = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..5000 {
            if rnd() % 3 != 0 {
                let base = rnd() % 1000;
                let key = EvKey {
                    time: base + ch.event_delay(seq),
                    tie: ch.event_tiebreak(seq),
                    seq,
                };
                q.push((rnd() % 8) as usize, key, seq);
                reference.push(Reverse((key, seq)));
                seq += 1;
            } else {
                assert_eq!(
                    q.pop(),
                    reference.pop().map(|Reverse((k, p))| (k, p)),
                    "pop order diverged from the reference heap"
                );
            }
            assert_eq!(q.len(), reference.len());
            assert_eq!(q.peek_key(), reference.peek().map(|Reverse((k, _))| *k));
        }
        while let Some(got) = q.pop() {
            assert_eq!(Some(got), reference.pop().map(|Reverse((k, p))| (k, p)));
        }
        assert!(reference.is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let mut q = ShardedEvq::new(3);
        for k in 0..9u64 {
            q.push(
                (k % 3) as usize,
                EvKey {
                    time: k,
                    tie: 0,
                    seq: k,
                },
                k,
            );
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(
            2,
            EvKey {
                time: 1,
                tie: 0,
                seq: 100,
            },
            42,
        );
        assert_eq!(
            q.pop(),
            Some((
                EvKey {
                    time: 1,
                    tie: 0,
                    seq: 100
                },
                42
            ))
        );
    }
}
