//! 2-D block-cyclic distribution on a `P × Q` image grid — HPL's data
//! layout. Index arithmetic follows ScaLAPACK's `numroc`/`indxg2l`
//! conventions (0-based here).

/// The block-cyclic layout of an `n × n` matrix with `nb × nb` blocks on a
/// `p × q` process grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockCyclic {
    /// Global matrix dimension.
    pub n: usize,
    /// Block size.
    pub nb: usize,
    /// Grid rows.
    pub p: usize,
    /// Grid columns.
    pub q: usize,
}

/// ScaLAPACK `numroc`: how many of `n` items (in blocks of `nb`) land on
/// process `iproc` of `nprocs`.
pub fn numroc(n: usize, nb: usize, iproc: usize, nprocs: usize) -> usize {
    let nblocks = n / nb;
    let extra = n % nb;
    let base = (nblocks / nprocs) * nb;
    let rem = nblocks % nprocs;
    base + match iproc.cmp(&rem) {
        std::cmp::Ordering::Less => nb,
        std::cmp::Ordering::Equal => extra,
        std::cmp::Ordering::Greater => 0,
    }
}

/// Choose a near-square grid `P × Q` with `P ≤ Q` and `P·Q = n_images`.
pub fn grid_dims(n_images: usize) -> (usize, usize) {
    assert!(n_images > 0);
    let mut p = (n_images as f64).sqrt() as usize;
    while p > 1 && !n_images.is_multiple_of(p) {
        p -= 1;
    }
    (p.max(1), n_images / p.max(1))
}

impl BlockCyclic {
    /// Build a layout, validating the parameters.
    pub fn new(n: usize, nb: usize, p: usize, q: usize) -> Self {
        assert!(n > 0 && nb > 0 && p > 0 && q > 0);
        Self { n, nb, p, q }
    }

    /// Grid row owning global row `g`.
    #[inline]
    pub fn owner_row(&self, g: usize) -> usize {
        (g / self.nb) % self.p
    }

    /// Grid column owning global column `g`.
    #[inline]
    pub fn owner_col(&self, g: usize) -> usize {
        (g / self.nb) % self.q
    }

    /// Local row index of global row `g` on its owner.
    #[inline]
    pub fn local_row(&self, g: usize) -> usize {
        (g / (self.nb * self.p)) * self.nb + g % self.nb
    }

    /// Local column index of global column `g` on its owner.
    #[inline]
    pub fn local_col(&self, g: usize) -> usize {
        (g / (self.nb * self.q)) * self.nb + g % self.nb
    }

    /// Global row of local row `l` on grid row `prow`.
    #[inline]
    pub fn global_row(&self, prow: usize, l: usize) -> usize {
        ((l / self.nb) * self.p + prow) * self.nb + l % self.nb
    }

    /// Global column of local column `l` on grid column `pcol`.
    #[inline]
    pub fn global_col(&self, pcol: usize, l: usize) -> usize {
        ((l / self.nb) * self.q + pcol) * self.nb + l % self.nb
    }

    /// Number of local rows on grid row `prow`.
    #[inline]
    pub fn local_rows(&self, prow: usize) -> usize {
        numroc(self.n, self.nb, prow, self.p)
    }

    /// Number of local columns on grid column `pcol`.
    #[inline]
    pub fn local_cols(&self, pcol: usize) -> usize {
        numroc(self.n, self.nb, pcol, self.q)
    }

    /// First local row on grid row `prow` whose global row is ≥ `g`
    /// (local rows are globally monotone, so this is a boundary index;
    /// returns `local_rows(prow)` when none qualify).
    pub fn first_local_row_ge(&self, prow: usize, g: usize) -> usize {
        let lr = self.local_rows(prow);
        // Binary search over the monotone global_row mapping.
        let mut lo = 0;
        let mut hi = lr;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.global_row(prow, mid) >= g {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// First local column on grid column `pcol` with global column ≥ `g`.
    pub fn first_local_col_ge(&self, pcol: usize, g: usize) -> usize {
        let lc = self.local_cols(pcol);
        let mut lo = 0;
        let mut hi = lc;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.global_col(pcol, mid) >= g {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numroc_even_split() {
        assert_eq!(numroc(16, 4, 0, 2), 8);
        assert_eq!(numroc(16, 4, 1, 2), 8);
    }

    #[test]
    fn numroc_uneven_blocks() {
        // 5 blocks of 4 (n=20) over 2 procs: proc0 gets 3 blocks.
        assert_eq!(numroc(20, 4, 0, 2), 12);
        assert_eq!(numroc(20, 4, 1, 2), 8);
    }

    #[test]
    fn numroc_partial_last_block() {
        // n=10, nb=4: blocks 4,4,2 over 2 procs: p0: 4+2, p1: 4.
        assert_eq!(numroc(10, 4, 0, 2), 6);
        assert_eq!(numroc(10, 4, 1, 2), 4);
        // Sum invariant across many shapes.
        for n in 1..40 {
            for nb in 1..7 {
                for np in 1..5 {
                    let total: usize = (0..np).map(|i| numroc(n, nb, i, np)).sum();
                    assert_eq!(total, n, "n={n} nb={nb} np={np}");
                }
            }
        }
    }

    #[test]
    fn grid_dims_near_square() {
        assert_eq!(grid_dims(1), (1, 1));
        assert_eq!(grid_dims(4), (2, 2));
        assert_eq!(grid_dims(16), (4, 4));
        assert_eq!(grid_dims(64), (8, 8));
        assert_eq!(grid_dims(256), (16, 16));
        assert_eq!(grid_dims(6), (2, 3));
        assert_eq!(grid_dims(7), (1, 7));
        assert_eq!(grid_dims(12), (3, 4));
    }

    #[test]
    fn row_mapping_roundtrip() {
        let g = BlockCyclic::new(37, 4, 3, 2);
        for grow in 0..37 {
            let owner = g.owner_row(grow);
            let l = g.local_row(grow);
            assert_eq!(g.global_row(owner, l), grow);
            assert!(l < g.local_rows(owner));
        }
        for pcol in 0..2 {
            for l in 0..g.local_cols(pcol) {
                let gc = g.global_col(pcol, l);
                assert_eq!(g.owner_col(gc), pcol);
                assert_eq!(g.local_col(gc), l);
            }
        }
    }

    #[test]
    fn local_rows_monotone_in_global() {
        let g = BlockCyclic::new(64, 8, 2, 2);
        for prow in 0..2 {
            let lr = g.local_rows(prow);
            for l in 1..lr {
                assert!(g.global_row(prow, l) > g.global_row(prow, l - 1));
            }
        }
    }

    #[test]
    fn first_local_row_ge_boundaries() {
        let g = BlockCyclic::new(32, 4, 2, 2);
        // Grid row 0 owns blocks 0,2,4,6 -> global rows 0-3,8-11,16-19,24-27.
        assert_eq!(g.first_local_row_ge(0, 0), 0);
        assert_eq!(g.first_local_row_ge(0, 4), 4); // next owned row is 8 at local 4
        assert_eq!(g.global_row(0, 4), 8);
        assert_eq!(g.first_local_row_ge(0, 9), 5);
        assert_eq!(g.first_local_row_ge(0, 28), 16); // none left
        assert_eq!(g.local_rows(0), 16);
        // Grid row 1 owns blocks 1,3,5,7.
        assert_eq!(g.first_local_row_ge(1, 0), 0);
        assert_eq!(g.first_local_row_ge(1, 5), 1);
    }

    #[test]
    fn first_local_col_ge_matches_linear_scan() {
        let g = BlockCyclic::new(50, 3, 2, 3);
        for pcol in 0..3 {
            for target in 0..=50 {
                let expect = (0..g.local_cols(pcol))
                    .position(|l| g.global_col(pcol, l) >= target)
                    .unwrap_or(g.local_cols(pcol));
                assert_eq!(g.first_local_col_ge(pcol, target), expect);
            }
        }
    }
}
