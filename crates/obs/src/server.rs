//! A minimal HTTP/1.1 server for the live observability surface.
//!
//! Serves exactly two routes from a [`FleetRegistry`]:
//!
//! * `GET /metrics`  — Prometheus text exposition
//! * `GET /healthz`  — JSON health summary (`200` healthy / `503` degraded)
//!
//! Hand-rolled on `std::net::TcpListener`: one accept loop thread, one
//! short-lived request per connection (`Connection: close`). This is an
//! operator endpoint scraped a few times a second at most — simplicity
//! and zero dependencies beat throughput.

use crate::prom::FleetRegistry;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handle to the running observability server; dropping it stops the
/// accept loop.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (port 0 picks a free port) and serve `registry` until
    /// the handle is dropped.
    pub fn start(addr: SocketAddr, registry: Arc<FleetRegistry>) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        // Nonblocking accept + sleep keeps shutdown latency bounded
        // without a self-pipe.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("caf-obs-http".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Serve inline: requests are tiny and the
                            // registry render is fast; no per-connection
                            // threads to leak.
                            let _ = serve_one(stream, &registry);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => return,
                    }
                }
            })?;
        Ok(ObsServer {
            addr: bound,
            stop,
            thread: Some(thread),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_one(stream: TcpStream, registry: &FleetRegistry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients don't see a reset.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            registry.render_prometheus(),
        ),
        ("GET", "/healthz") => {
            let (healthy, body) = registry.healthz();
            (
                if healthy {
                    "200 OK"
                } else {
                    "503 Service Unavailable"
                },
                "application/json",
                body,
            )
        }
        ("GET", _) => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics or /healthz\n".to_string(),
        ),
        _ => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "GET only\n".to_string(),
        ),
    };
    let mut w = stream;
    w.write_all(
        format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_fabric::{NodeTelemetry, ObsSnapshot, StatsSnapshot, TelemetryPhase};
    use std::io::Read;

    fn request(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        let (head, body) = buf.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    fn live_registry() -> Arc<FleetRegistry> {
        let reg = Arc::new(FleetRegistry::new(vec![vec![0], vec![1]]));
        for node in 0..2u32 {
            reg.update(
                node as usize,
                NodeTelemetry {
                    node,
                    phase: TelemetryPhase::Live,
                    sent_at_ns: 0,
                    cause: String::new(),
                    images: vec![node],
                    stats: StatsSnapshot {
                        puts_inter: 3 + node as u64,
                        ..StatsSnapshot::default()
                    },
                    obs: ObsSnapshot::default(),
                    events: Vec::new(),
                },
            );
        }
        reg
    }

    #[test]
    fn serves_metrics_and_healthz() {
        let reg = live_registry();
        let srv = ObsServer::start("127.0.0.1:0".parse().unwrap(), reg.clone()).expect("start");
        let addr = srv.addr();

        let (head, body) = request(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain"), "{head}");
        assert!(body.contains("caf_node_up{node=\"0\"} 1"), "{body}");
        assert!(
            body.contains("caf_puts_total{node=\"1\",level=\"inter\"} 4"),
            "{body}"
        );

        let (head, body) = request(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"ok\""), "{body}");

        reg.mark_dead(1);
        let (head, body) = request(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 503"), "{head}");
        assert!(body.contains("\"degraded\""), "{body}");

        let (head, _) = request(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        drop(srv);
        // Stopped server refuses (or resets) new connections shortly after.
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            TcpStream::connect(addr).is_err() || {
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_millis(200)))
                    .unwrap();
                s.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").ok();
                let mut b = [0u8; 1];
                !matches!(s.read(&mut b), Ok(n) if n > 0)
            },
            "server must stop accepting after drop"
        );
    }
}
