//! `fleet_report.json`: the machine-readable summary of one fleet run.
//!
//! One document, hand-emitted (no serde): per node — image list, clock
//! offset, phase/cause, the full 22-counter [`StatsSnapshot`], per
//! node-pair wire traffic, the put-ack latency histogram with derived
//! percentiles, and per-peer heartbeat jitter. Wire counters are reported
//! from *both* ends (A's tx row to B and B's rx row from A), which is
//! itself a diagnostic: a large mismatch means frames died in flight.

use crate::merge::NodeFeed;
use caf_fabric::StatsSnapshot;

/// Serialize the fleet's feeds into the `fleet_report.json` document.
pub fn fleet_report_json(feeds: &[NodeFeed]) -> String {
    let mut out = String::with_capacity(1024 + feeds.len() * 2048);
    out.push_str("{\n  \"schema\": \"caf-fleet-report-v1\",\n  \"nodes\": [\n");
    for (i, feed) in feeds.iter().enumerate() {
        let t = &feed.telemetry;
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("    {\n");
        out.push_str(&format!("      \"node\": {},\n", t.node));
        out.push_str(&format!(
            "      \"images\": [{}],\n",
            t.images
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("      \"phase\": \"{}\",\n", t.phase.label()));
        out.push_str(&format!(
            "      \"cause\": \"{}\",\n",
            json_escape(&t.cause)
        ));
        out.push_str(&format!("      \"clock_offset_ns\": {},\n", feed.offset_ns));
        out.push_str(&format!("      \"sent_at_ns\": {},\n", t.sent_at_ns));
        out.push_str(&format!("      \"trace_events\": {},\n", t.events.len()));
        out.push_str("      \"stats\": {");
        out.push_str(&stats_fields(&t.stats));
        out.push_str("},\n");
        out.push_str("      \"wire_peers\": [");
        let mut first = true;
        for (peer, w) in t.obs.peers.iter().enumerate() {
            if peer == t.node as usize {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "{{\"peer\": {peer}, \"frames_tx\": {}, \"bytes_tx\": {}, \
                 \"frames_rx\": {}, \"bytes_rx\": {}, \"retries\": {}, \
                 \"reconnects\": {}}}",
                w.frames_tx, w.bytes_tx, w.frames_rx, w.bytes_rx, w.retries, w.reconnects
            ));
        }
        out.push_str("],\n");
        let h = &t.obs.put_ack;
        out.push_str(&format!(
            "      \"put_ack_ns\": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \
             \"p95\": {}, \"p99\": {}, \"max\": {}, \"log2_buckets\": [{}]}},\n",
            h.count,
            h.mean_ns(),
            h.percentile_ns(50.0),
            h.percentile_ns(95.0),
            h.percentile_ns(99.0),
            h.max_ns,
            h.buckets
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            "      \"heartbeat_period_ns\": {},\n",
            t.obs.heartbeat_period_ns
        ));
        out.push_str("      \"heartbeats\": [");
        let mut first = true;
        for (peer, hb) in t.obs.heartbeats.iter().enumerate() {
            if peer == t.node as usize {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "{{\"peer\": {peer}, \"periods\": {}, \"mean_period_ns\": {}, \
                 \"max_jitter_ns\": {}}}",
                hb.count,
                hb.mean_period_ns(),
                hb.max_abs_dev_ns
            ));
        }
        out.push_str("]\n    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn stats_fields(s: &StatsSnapshot) -> String {
    format!(
        "\"puts_intra\": {}, \"puts_inter\": {}, \"gets_intra\": {}, \
         \"gets_inter\": {}, \"flags_intra\": {}, \"flags_inter\": {}, \
         \"flag_waits\": {}, \"amos\": {}, \"bytes_intra\": {}, \
         \"bytes_inter\": {}, \"puts_nb_injected\": {}, \
         \"puts_nb_completed\": {}, \"wire_frames_tx\": {}, \
         \"wire_frames_rx\": {}, \"wire_bytes_tx\": {}, \
         \"wire_bytes_rx\": {}, \"wire_retries\": {}, \"wire_reconnects\": {}, \
         \"ams_injected\": {}, \"am_batches_flushed\": {}, \
         \"am_payload_bytes\": {}, \"am_fused\": {}, \
         \"shm_puts\": {}, \"shm_bytes\": {}, \"shm_flag_ops\": {}",
        s.puts_intra,
        s.puts_inter,
        s.gets_intra,
        s.gets_inter,
        s.flags_intra,
        s.flags_inter,
        s.flag_waits,
        s.amos,
        s.bytes_intra,
        s.bytes_inter,
        s.puts_nb_injected,
        s.puts_nb_completed,
        s.wire_frames_tx,
        s.wire_frames_rx,
        s.wire_bytes_tx,
        s.wire_bytes_rx,
        s.wire_retries,
        s.wire_reconnects,
        s.ams_injected,
        s.am_batches_flushed,
        s.am_payload_bytes,
        s.am_fused,
        s.shm_puts,
        s.shm_bytes,
        s.shm_flag_ops
    )
}

/// Escape a string for embedding in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_fabric::{
        HeartbeatSnapshot, HistSnapshot, NodeTelemetry, ObsSnapshot, PeerWireSnapshot,
        TelemetryPhase,
    };
    use caf_trace::chrome::json;

    fn sample_feeds() -> Vec<NodeFeed> {
        (0..2u32)
            .map(|node| NodeFeed {
                telemetry: NodeTelemetry {
                    node,
                    phase: if node == 1 {
                        TelemetryPhase::FlightRecorder
                    } else {
                        TelemetryPhase::Final
                    },
                    sent_at_ns: 5_000,
                    cause: if node == 1 {
                        "peer \"0\" died\nmid-run".into()
                    } else {
                        String::new()
                    },
                    images: vec![node * 2, node * 2 + 1],
                    stats: StatsSnapshot {
                        puts_inter: 10 + node as u64,
                        wire_bytes_tx: 4096,
                        ams_injected: 64,
                        am_batches_flushed: 4,
                        am_payload_bytes: 512,
                        am_fused: 16,
                        shm_puts: 21,
                        shm_bytes: 1344,
                        shm_flag_ops: 9,
                        ..StatsSnapshot::default()
                    },
                    obs: ObsSnapshot {
                        heartbeat_period_ns: 100_000_000,
                        peers: vec![
                            PeerWireSnapshot {
                                frames_tx: 3,
                                bytes_tx: 300,
                                ..PeerWireSnapshot::default()
                            };
                            2
                        ],
                        heartbeats: vec![
                            HeartbeatSnapshot {
                                count: 5,
                                sum_period_ns: 500_000_000,
                                max_abs_dev_ns: 7_000_000,
                            };
                            2
                        ],
                        put_ack: {
                            let mut h = HistSnapshot {
                                count: 2,
                                sum_ns: 3000,
                                max_ns: 2000,
                                ..HistSnapshot::default()
                            };
                            h.buckets[10] = 2;
                            h
                        },
                    },
                    events: Vec::new(),
                },
                offset_ns: 1234 * node as i64,
            })
            .collect()
    }

    #[test]
    fn report_is_valid_json_with_per_pair_counters() {
        let doc = fleet_report_json(&sample_feeds());
        let parsed = json::parse(&doc).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(json::Value::as_str),
            Some("caf-fleet-report-v1")
        );
        let nodes = parsed
            .get("nodes")
            .and_then(json::Value::as_arr)
            .expect("nodes array");
        assert_eq!(nodes.len(), 2);
        let n0 = &nodes[0];
        assert_eq!(n0.get("node").and_then(json::Value::as_f64), Some(0.0));
        let pairs = n0
            .get("wire_peers")
            .and_then(json::Value::as_arr)
            .expect("wire_peers");
        assert_eq!(pairs.len(), 1, "own rank excluded");
        assert_eq!(
            pairs[0].get("peer").and_then(json::Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            pairs[0].get("frames_tx").and_then(json::Value::as_f64),
            Some(3.0)
        );
        let stats = n0.get("stats").expect("stats");
        assert_eq!(
            stats.get("ams_injected").and_then(json::Value::as_f64),
            Some(64.0)
        );
        assert_eq!(
            stats.get("am_fused").and_then(json::Value::as_f64),
            Some(16.0)
        );
        assert_eq!(
            stats.get("shm_puts").and_then(json::Value::as_f64),
            Some(21.0)
        );
        assert_eq!(
            stats.get("shm_flag_ops").and_then(json::Value::as_f64),
            Some(9.0)
        );
        let ack = n0.get("put_ack_ns").expect("put_ack_ns");
        assert_eq!(ack.get("count").and_then(json::Value::as_f64), Some(2.0));
        assert_eq!(ack.get("p50").and_then(json::Value::as_f64), Some(2048.0));
        // The aborted node's cause (quotes, newline) survived escaping.
        let n1 = &nodes[1];
        assert_eq!(
            n1.get("phase").and_then(json::Value::as_str),
            Some("flight-recorder")
        );
        let cause = n1.get("cause").and_then(json::Value::as_str).unwrap();
        assert!(cause.contains("died"), "{cause}");
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
