//! Traced barrier episodes on the 4-node x 4-core `mini` machine.
//!
//! Runs a pure dissemination barrier and a TDLB barrier over 16 simulated
//! images with trace capture on, then shows all three observability
//! surfaces: the per-episode flag-notification count against the paper's
//! closed form, the per-phase latency table, and the critical path of the
//! TDLB leader dissemination (⌈log₂ 4⌉ = 2 inter-node hops). The full
//! TDLB trace is also written as Chrome trace-event JSON for Perfetto.
//!
//! ```sh
//! cargo run --features trace --example trace_barrier [out.trace.json]
//! ```

use caf::fabric::{SimConfig, SimFabric};
use caf::microbench::trace_table;
use caf::runtime::{run_on_fabric, BarrierAlgo, CollectiveConfig};
use caf::topology::{presets, ImageMap, Placement, ProcId};
use caf::trace::{chrome_trace_json, extract, phase_window, Event, EventKind, Tracer};

const IMAGES: usize = 16;
const NODES: usize = 4;

/// Run `episodes` barrier episodes under `algo` and return the trace.
fn traced_run(algo: BarrierAlgo, episodes: usize) -> Vec<Event> {
    let map = image_map();
    let tracer = Tracer::for_images(IMAGES);
    let fabric = SimFabric::new(
        map,
        SimConfig {
            tracer: tracer.clone(),
            ..SimConfig::default()
        },
    );
    let cfg = CollectiveConfig {
        barrier: algo,
        ..CollectiveConfig::default()
    };
    run_on_fabric(fabric, cfg, move |img| {
        for _ in 0..episodes {
            img.sync_all();
        }
    });
    tracer.events()
}

fn image_map() -> ImageMap {
    ImageMap::new(
        presets::mini(NODES, IMAGES / NODES),
        IMAGES,
        &Placement::Block {
            per_node: IMAGES / NODES,
        },
    )
}

fn flag_adds(events: &[Event]) -> usize {
    events
        .iter()
        .filter(|e| e.kind == EventKind::FlagAdd)
        .count()
}

fn main() {
    // 1. Dissemination barrier vs the closed form n * ceil(log2 n).
    // Two deterministic runs differing only in episode count, so team
    // formation traffic cancels out of the difference.
    let d = 3;
    let base = flag_adds(&traced_run(BarrierAlgo::Dissemination, 2));
    let more = flag_adds(&traced_run(BarrierAlgo::Dissemination, 2 + d));
    let per_episode = (more - base) / d;
    println!(
        "dissemination barrier on {IMAGES} images: {per_episode} flag \
         notifications per episode (closed form n*ceil(log2 n) = {})",
        IMAGES * IMAGES.next_power_of_two().trailing_zeros() as usize
    );

    // 2. TDLB barrier: phase latency table from the same trace.
    let events = traced_run(BarrierAlgo::Tdlb, 4);
    println!();
    trace_table("trace_barrier: TDLB phase latencies", &events).print();

    // 3. Critical path of the last leader-dissemination phase. The
    //    phase window (latest entry .. latest exit) isolates the
    //    dissemination rounds: ceil(log2 nodes) inter-node hops.
    let last_epoch = events
        .iter()
        .filter(|e| e.kind == EventKind::TdlbDissem)
        .map(|e| e.c)
        .max()
        .expect("TDLB episodes traced");
    let cp = phase_window(&events, EventKind::TdlbDissem, last_epoch)
        .and_then(|w| extract(&events, w))
        .expect("critical path");
    println!();
    print!("{}", cp.render());

    // 4. Chrome trace-event JSON: load in Perfetto (ui.perfetto.dev) or
    //    chrome://tracing; images are grouped into one process per node.
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_barrier.trace.json".into());
    let map = image_map();
    let json = chrome_trace_json(&events, |i| map.node_of(ProcId(i)).index());
    std::fs::write(&out, &json).expect("write trace file");
    println!(
        "\nwrote {} ({} events, {} bytes)",
        out,
        events.len(),
        json.len()
    );
}
