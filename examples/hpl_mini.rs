//! A small HPL solve on a 2×2 image grid with row/column teams, verified
//! against the regenerated input matrix — the paper's §V-B workload at
//! example scale, printed with both 1-level and 2-level collectives.
//!
//! Run with: `cargo run --release --example hpl_mini`

use caf::hpl::{factorize, residual_check, HplConfig};
use caf::runtime::{run, CollectiveConfig, RunConfig};
use caf::topology::presets;

fn main() {
    let hpl = HplConfig {
        n: 96,
        nb: 8,
        seed: 2015,
    };

    for (label, collectives) in [
        ("1-level (flat collectives)", CollectiveConfig::one_level()),
        ("2-level (hierarchy-aware)", CollectiveConfig::two_level()),
    ] {
        let cfg = RunConfig::sim_packed(presets::mini(2, 2), 4).with_collectives(collectives);
        let results = run(cfg, move |img| {
            let outcome = factorize(img, &hpl);
            let residual = residual_check(img, &hpl, &outcome);
            (outcome.time_ns, outcome.gflops(), residual)
        });
        let (time_ns, gflops, _) = results[0];
        let residual = results[0].2.expect("image 1 verifies");
        assert!(residual < 1e-10, "residual {residual} too large");
        println!(
            "{label:30}  N={} NB={}  time={:8.1} us (modeled)  {gflops:.3} GFLOP/s  \
             residual={residual:.2e}",
            hpl.n,
            hpl.nb,
            time_ns as f64 / 1000.0,
        );
    }
    println!("hpl_mini OK — LU verified: ||LU - PA|| / (||A|| N) within tolerance");
}
