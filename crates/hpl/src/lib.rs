//! # caf-hpl
//!
//! A High-Performance Linpack (HPL) port on `caf-rs` teams, mirroring the
//! paper's §V-B CAF port of HPL: the matrix lives in a 2-D block-cyclic
//! layout on a P×Q image grid, **row teams and column teams** carry the
//! panel and update traffic, and collective algorithm choice (1-level vs.
//! 2-level) is the experiment variable behind Figure 1.
//!
//! The factorization is right-looking LU with partial pivoting; local
//! kernels (`dgemm`, `dtrsm`, rank-1 updates) really execute (so residuals
//! can be verified) while their flop counts also advance the simulator's
//! virtual clock, making simulated GFLOP/s reflect the modeled machine.

#![warn(missing_docs)]

pub mod blas;
pub mod grid;
pub mod harness;
pub mod lu;
pub mod matrix;
pub mod solve;

pub use grid::{grid_dims, numroc, BlockCyclic};
pub use harness::residual_check;
pub use lu::{factorize, HplConfig, HplOutcome};
pub use matrix::{hpl_element, hpl_matrix, Matrix};
pub use solve::{solve, verify_solve, SolveOutcome};

#[cfg(test)]
mod tests {
    use super::*;
    use caf_runtime::{run, CollectiveConfig, RunConfig};
    use caf_topology::presets;

    fn check(
        images: usize,
        nodes: usize,
        cores: usize,
        n: usize,
        nb: usize,
        cfg: CollectiveConfig,
    ) {
        let rc = RunConfig::sim_packed(presets::mini(nodes, cores), images).with_collectives(cfg);
        let hpl = HplConfig { n, nb, seed: 42 };
        let out = run(rc, move |img| {
            let outcome = factorize(img, &hpl);
            let residual = residual_check(img, &hpl, &outcome);
            (outcome.time_ns, residual)
        });
        for (i, (t, residual)) in out.into_iter().enumerate() {
            assert!(t > 0, "image {} reported zero time", i + 1);
            if i == 0 {
                let r = residual.expect("image 1 verifies");
                assert!(r < 1e-10, "residual {r} too large (n={n}, images={images})");
            } else {
                assert!(residual.is_none());
            }
        }
    }

    #[test]
    fn single_image_lu() {
        check(1, 1, 1, 24, 4, CollectiveConfig::auto());
    }

    #[test]
    fn four_images_2x2_grid() {
        check(4, 2, 2, 32, 4, CollectiveConfig::auto());
    }

    #[test]
    fn four_images_one_level_collectives() {
        check(4, 2, 2, 32, 4, CollectiveConfig::one_level());
    }

    #[test]
    fn four_images_two_level_collectives() {
        check(4, 2, 2, 32, 4, CollectiveConfig::two_level());
    }

    #[test]
    fn six_images_rectangular_grid() {
        // 2x3 grid; N not divisible by NB exercises partial blocks.
        check(6, 2, 3, 38, 4, CollectiveConfig::auto());
    }

    #[test]
    fn eight_images_2x4_grid_larger_matrix() {
        check(8, 2, 4, 64, 8, CollectiveConfig::auto());
    }

    #[test]
    fn nine_images_3x3_grid() {
        check(9, 3, 3, 45, 5, CollectiveConfig::auto());
    }

    #[test]
    fn block_size_one() {
        check(4, 2, 2, 12, 1, CollectiveConfig::auto());
    }

    #[test]
    fn nb_larger_than_matrix_is_serial_panel() {
        check(4, 2, 2, 8, 16, CollectiveConfig::auto());
    }

    #[test]
    fn gflops_accounting_sane() {
        let rc = RunConfig::sim_packed(presets::mini(2, 2), 4);
        let hpl = HplConfig {
            n: 32,
            nb: 4,
            seed: 1,
        };
        let out = run(rc, move |img| {
            let o = factorize(img, &hpl);
            (o.time_ns, o.gflops())
        });
        for (t, g) in out {
            assert!(t > 0);
            assert!(g > 0.0 && g < 1000.0, "gflops {g} out of plausible range");
        }
    }

    #[test]
    fn pivots_agree_across_images() {
        let rc = RunConfig::sim_packed(presets::mini(2, 2), 4);
        let hpl = HplConfig {
            n: 24,
            nb: 4,
            seed: 7,
        };
        let out = run(rc, move |img| factorize(img, &hpl).pivots);
        for p in &out[1..] {
            assert_eq!(p, &out[0], "pivot vectors must be identical everywhere");
        }
        // Pivots are row indices >= their step.
        for (s, &p) in out[0].iter().enumerate() {
            assert!(p >= s && p < 24);
        }
    }
}
