//! Small combinatorial helpers shared by the collective algorithms:
//! power-of-two arithmetic and binomial-tree shape functions.

/// ⌈log₂ n⌉ for n ≥ 1 (0 for n = 1) — the round count of dissemination and
/// the depth of binomial trees.
#[inline]
pub fn ceil_log2(n: usize) -> usize {
    assert!(n >= 1, "ceil_log2 of zero");
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// Largest power of two ≤ n (n ≥ 1) — the main-phase size of the
/// general-n recursive-doubling allreduce.
#[inline]
pub fn floor_pow2(n: usize) -> usize {
    assert!(n >= 1);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// Parent of virtual rank `v` (> 0) in the standard binomial broadcast tree
/// rooted at 0: clear the highest set bit.
#[inline]
pub fn binomial_parent(v: usize) -> usize {
    assert!(v > 0, "root has no parent");
    v & !(1 << (usize::BITS - 1 - (v as u64 as usize).leading_zeros()))
}

/// Children of virtual rank `v` in a binomial tree over `n` virtual ranks,
/// in send order (closest subtree first). Child `v + 2^k` exists for every
/// `2^k > v` with `v + 2^k < n`.
pub fn binomial_children(v: usize, n: usize) -> Vec<usize> {
    debug_assert!(v < n);
    let mut k = if v == 0 {
        0
    } else {
        usize::BITS as usize - v.leading_zeros() as usize
    };
    let mut out = Vec::new();
    while v + (1 << k) < n {
        out.push(v + (1 << k));
        k += 1;
        if 1usize << k == 0 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(352), 9);
    }

    #[test]
    fn floor_pow2_values() {
        assert_eq!(floor_pow2(1), 1);
        assert_eq!(floor_pow2(2), 2);
        assert_eq!(floor_pow2(3), 2);
        assert_eq!(floor_pow2(44), 32);
        assert_eq!(floor_pow2(64), 64);
    }

    #[test]
    fn binomial_parent_clears_highest_bit() {
        assert_eq!(binomial_parent(1), 0);
        assert_eq!(binomial_parent(2), 0);
        assert_eq!(binomial_parent(3), 1);
        assert_eq!(binomial_parent(6), 2);
        assert_eq!(binomial_parent(12), 4);
    }

    #[test]
    fn binomial_children_of_root() {
        assert_eq!(binomial_children(0, 8), vec![1, 2, 4]);
        assert_eq!(binomial_children(0, 6), vec![1, 2, 4]);
        assert_eq!(binomial_children(0, 1), Vec::<usize>::new());
    }

    #[test]
    fn binomial_children_internal() {
        assert_eq!(binomial_children(1, 8), vec![3, 5]);
        assert_eq!(binomial_children(2, 8), vec![6]);
        assert_eq!(binomial_children(4, 8), Vec::<usize>::new());
        assert_eq!(binomial_children(2, 7), vec![6]);
    }

    #[test]
    fn tree_is_consistent_every_nonroot_has_one_parent() {
        for n in 1..50 {
            let mut indeg = vec![0usize; n];
            for v in 0..n {
                for c in binomial_children(v, n) {
                    assert_eq!(binomial_parent(c), v, "child {c} of {v} (n={n})");
                    indeg[c] += 1;
                }
            }
            assert_eq!(indeg[0], 0);
            for (v, d) in indeg.iter().enumerate().skip(1) {
                assert_eq!(*d, 1, "rank {v} in tree of {n}");
            }
        }
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        for n in [2usize, 5, 16, 44, 352] {
            for v in 1..n {
                let mut hops = 0;
                let mut cur = v;
                while cur != 0 {
                    cur = binomial_parent(cur);
                    hops += 1;
                }
                assert!(hops <= ceil_log2(n), "rank {v} depth {hops} in n={n}");
            }
        }
    }
}
