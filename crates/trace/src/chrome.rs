//! Chrome trace-event JSON exporter (the `chrome://tracing` / Perfetto
//! "JSON Array Format"): spans become `"ph":"X"` complete events, instant
//! records become `"ph":"i"` instants, and flag deliveries are attached
//! to the *destination* image's track so notification arrivals read
//! naturally in the UI. One process per node, one thread per image.
//!
//! Timestamps are emitted in microseconds with nanosecond precision
//! (fractional `ts`), straight from the fabric clock.

use crate::event::{Event, EventKind, SYSTEM_IMG};

/// Serialize `events` to Chrome trace JSON. `node_of` maps an image index
/// to its node (used as the trace `pid`); pass `|_| 0` when topology is
/// unknown.
pub fn chrome_trace_json(events: &[Event], node_of: impl Fn(usize) -> usize) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 256);
    out.push_str("[\n");
    let mut first = true;

    let mut seen_tracks: Vec<(usize, usize)> = Vec::new();
    for ev in events {
        let img = display_image(ev);
        let Some(img) = img else { continue };
        let node = node_of(img);
        if !seen_tracks.contains(&(node, img)) {
            seen_tracks.push((node, img));
        }
        push_event(&mut out, &mut first, ev, node, img);
    }

    // Metadata names so Perfetto labels tracks "node N" / "image I".
    // One process_name per pid, one thread_name per (pid, tid).
    seen_tracks.sort_unstable();
    let mut named_nodes: Vec<usize> = Vec::new();
    for (node, img) in seen_tracks {
        if !named_nodes.contains(&node) {
            named_nodes.push(node);
            push_meta(
                &mut out,
                &mut first,
                "process_name",
                node,
                img,
                &format!("node {node}"),
            );
        }
        push_meta(
            &mut out,
            &mut first,
            "thread_name",
            node,
            img,
            &format!("image {img}"),
        );
    }

    out.push_str("\n]\n");
    out
}

/// Which image's track an event is drawn on: deliveries land on their
/// destination image; other system records are dropped from the export.
fn display_image(ev: &Event) -> Option<usize> {
    if ev.img == SYSTEM_IMG {
        if ev.kind == EventKind::FlagDeliver {
            Some(ev.d as usize)
        } else {
            None
        }
    } else {
        Some(ev.img as usize)
    }
}

fn push_event(out: &mut String, first: &mut bool, ev: &Event, node: usize, img: usize) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let ts = ev.t_ns as f64 / 1000.0;
    let name = ev.kind.name();
    if ev.dur_ns > 0 {
        let dur = ev.dur_ns as f64 / 1000.0;
        out.push_str(&format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\
             \"pid\":{node},\"tid\":{img},\"args\":{{{}}}}}",
            args_json(ev)
        ));
    } else {
        out.push_str(&format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"ts\":{ts:.3},\"s\":\"t\",\
             \"pid\":{node},\"tid\":{img},\"args\":{{{}}}}}",
            args_json(ev)
        ));
    }
}

fn push_meta(out: &mut String, first: &mut bool, kind: &str, node: usize, img: usize, name: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(&format!(
        "{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{node},\"tid\":{img},\
         \"args\":{{\"name\":\"{name}\"}}}}"
    ));
}

fn args_json(ev: &Event) -> String {
    let locality = if ev.is_self() {
        "self"
    } else if ev.is_intra() {
        "intra"
    } else {
        "inter"
    };
    format!(
        "\"a\":{},\"b\":{},\"c\":{},\"d\":{},\"locality\":\"{locality}\",\"level\":\"{}\"",
        ev.a,
        ev.b,
        ev.c,
        ev.d,
        ev.hierarchy_level().label()
    )
}

pub mod json {
    //! A small recursive-descent JSON parser, used by tests and tooling to
    //! prove exporter output is well-formed without a serde dependency.

    /// Parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (parsed as `f64`).
        Num(f64),
        /// A string literal.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, as ordered key/value pairs.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Field lookup on objects.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// Numeric content, if any.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// String content, if any.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Array content, if any.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }
    }

    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing bytes at {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == ch {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at {}", ch as char, pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_obj(b, pos),
            Some(b'[') => parse_arr(b, pos),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
            other => Err(format!("unexpected {other:?} at {pos}")),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {pos}"))
        }
    }

    fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len()
            && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at {pos}")),
                    }
                    *pos += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through byte by byte; the
                    // exporter only emits ASCII anyway.
                    out.push(c as char);
                    *pos += 1;
                }
            }
        }
    }

    fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => {
                    *pos += 1;
                }
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at {pos}")),
            }
        }
    }

    fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            let val = parse_value(b, pos)?;
            fields.push((key, val));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => {
                    *pos += 1;
                }
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::{parse, Value};
    use super::*;
    use crate::event::Level;

    fn sample_events() -> Vec<Event> {
        let mut put = Event::span(EventKind::Put, 1000, 500)
            .a(1)
            .b(4096)
            .intra(true);
        put.img = 0;
        let mut wait = Event::span(EventKind::FlagWait, 1200, 800).a(3).b(2);
        wait.img = 1;
        let mut deliver = Event::instant(EventKind::FlagDeliver, 1500)
            .a(0)
            .b(3)
            .c(1000)
            .d(1);
        deliver.img = SYSTEM_IMG;
        let mut barrier = Event::span(EventKind::Barrier, 900, 1200)
            .a(2)
            .b(7)
            .c(1)
            .level(Level::Whole);
        barrier.img = 1;
        vec![put, wait, deliver, barrier]
    }

    #[test]
    fn exporter_output_parses_and_keeps_events() {
        let s = chrome_trace_json(&sample_events(), |img| img / 2);
        let v = parse(&s).expect("valid JSON");
        let arr = v.as_arr().expect("top-level array");
        // 4 events + 1 process_name (both images on node 0) + 2 thread_names.
        assert_eq!(arr.len(), 7);
        let names: Vec<&str> = arr
            .iter()
            .filter_map(|e| e.get("name").and_then(Value::as_str))
            .collect();
        assert!(names.contains(&"put"));
        assert!(names.contains(&"flag_deliver"));
        let put = arr
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("put"))
            .unwrap();
        assert_eq!(put.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(put.get("ts").and_then(Value::as_f64), Some(1.0));
        assert_eq!(put.get("dur").and_then(Value::as_f64), Some(0.5));
    }

    #[test]
    fn deliveries_land_on_destination_track() {
        let s = chrome_trace_json(&sample_events(), |_| 0);
        let v = parse(&s).unwrap();
        let deliver = v
            .as_arr()
            .unwrap()
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("flag_deliver"))
            .unwrap();
        assert_eq!(deliver.get("tid").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("{\"a\": 1, \"b\": [true, null, -2.5e3]}").is_ok());
    }
}
