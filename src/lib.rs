//! # caf — facade crate
//!
//! Re-exports the whole `caf-rs` workspace behind one dependency: a
//! team-based, memory hierarchy-aware PGAS runtime in the style of Coarray
//! Fortran (Fortran 2008 coarrays + the Fortran 2015 team constructs),
//! reproducing Khaldi et al., *"A Team-Based Methodology of Memory
//! Hierarchy-Aware Runtime Support in Coarray Fortran"* (2015).
//!
//! See the README for a quickstart and `DESIGN.md` for the system inventory.

pub use caf_apps as apps;
pub use caf_collectives as collectives;
pub use caf_fabric as fabric;
pub use caf_hpl as hpl;
pub use caf_microbench as microbench;
pub use caf_runtime as runtime;
pub use caf_topology as topology;
pub use caf_trace as trace;
