//! # caf-trace
//!
//! Structured tracing for the caf-rs PGAS runtime: per-image lock-free
//! event rings, a zero-overhead-when-disabled [`Tracer`] handle, a Chrome
//! trace-event JSON exporter (Perfetto-loadable), per-(team, collective,
//! hierarchy-level) latency aggregation, and a critical-path extractor
//! that names the longest notification chain of a traced episode.
//!
//! Timestamps come from the owning fabric's clock: **virtual nanoseconds**
//! under `SimFabric` (traces of simulated 256-image runs are causally
//! exact) and wall nanoseconds under `ThreadFabric`.
//!
//! ## Feature `capture`
//!
//! Recording is gated behind the `capture` feature (enabled downstream as
//! the `trace` feature of `caf-fabric`/`caf-runtime`/`caf`). Without it,
//! [`Tracer`] is a zero-sized no-op and every instrumentation site folds
//! away — default builds are bit-for-bit the un-instrumented runtime. The
//! data model, exporters, aggregation, and critical-path analysis compile
//! unconditionally: they operate on `Vec<Event>` from any source.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
#![deny(unsafe_code)]

pub mod chrome;
pub mod critical;
pub mod event;
pub mod metrics;
pub mod ring;
pub mod tracer;

pub use chrome::chrome_trace_json;
pub use critical::{episode_window, extract, phase_window, CriticalPath, Hop};
pub use event::{Event, EventKind, Level, SYSTEM_IMG};
pub use metrics::{aggregate, summary_rows, MetricsRow};
pub use tracer::{off_ref, Tracer};
