//! Fleet observability probes and the telemetry shipment format.
//!
//! The socket fabric is the one backend whose behavior cannot be read from
//! a single process: wire traffic, ack latencies, and peer liveness are
//! distributed facts. This module keeps the per-process half of the story:
//!
//! * `SocketObs` — cheap relaxed-atomic probes the fabric's hot paths
//!   feed: per-peer wire frame/byte/retry counters (the per-node-pair
//!   matrix of `fleet_report.json`), a log2-bucket histogram of blocking
//!   put-ack service times, and per-peer heartbeat arrival jitter.
//! * [`NodeTelemetry`] — one process's complete observability snapshot
//!   (counters, probe snapshot, trace-ring window) with a versioned binary
//!   codec. Shipped to the `caf-launch` coordinator in a
//!   [`Frame::Telemetry`](super::wire::Frame::Telemetry) or spilled under
//!   `CAF_TRACE_DIR`; the supervisor merges the fleet's shipments into one
//!   timeline and report.
//!
//! Everything here is observability-plane: none of it is consulted by the
//! data path, and all counters are relaxed.

use super::wire::{put_bytes, put_stats, put_u32, put_u64, Cursor};
use crate::stats::StatsSnapshot;
use caf_trace::event::EVENT_WORDS;
use caf_trace::Event;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

/// Version magic leading every encoded [`NodeTelemetry`]; bump on any
/// incompatible payload-format change (independent of the frame protocol's
/// `WIRE_MAGIC`).
pub const TELEMETRY_MAGIC: u32 = 0xCAF0_0B53;

/// Bucket count of [`HistSnapshot`]: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` ns, with the top bucket absorbing everything larger.
pub const HIST_BUCKETS: usize = 32;

/// Why a [`NodeTelemetry`] was shipped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TelemetryPhase {
    /// Periodic in-flight update (counters only; no trace events — cheap
    /// enough to ship every `CAF_OBS_INTERVAL_MS`).
    Live = 0,
    /// Final snapshot after all hosted images completed.
    Final = 1,
    /// Flight recorder: the process is going down (peer death, panic) and
    /// this is what it saw last, trace window included.
    FlightRecorder = 2,
}

impl TelemetryPhase {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(TelemetryPhase::Live),
            1 => Some(TelemetryPhase::Final),
            2 => Some(TelemetryPhase::FlightRecorder),
            _ => None,
        }
    }

    /// Short lowercase label (`live` / `final` / `flight-recorder`).
    pub fn label(&self) -> &'static str {
        match self {
            TelemetryPhase::Live => "live",
            TelemetryPhase::Final => "final",
            TelemetryPhase::FlightRecorder => "flight-recorder",
        }
    }
}

// ---- atomic probes (fabric-internal) ---------------------------------

struct PeerWire {
    frames_tx: AtomicU64,
    bytes_tx: AtomicU64,
    frames_rx: AtomicU64,
    bytes_rx: AtomicU64,
    retries: AtomicU64,
    reconnects: AtomicU64,
}

struct HbWatch {
    /// ns-since-fabric-start of the previous heartbeat arrival (0 = none).
    last_arrival: AtomicU64,
    count: AtomicU64,
    sum_period_ns: AtomicU64,
    max_abs_dev_ns: AtomicU64,
}

struct Hist {
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Hist {
    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        let idx = (63 - ns.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }
}

/// The socket fabric's observability probes: one instance per fabric,
/// sized for the fleet at `join` time.
pub(super) struct SocketObs {
    heartbeat_period_ns: u64,
    peers: Vec<PeerWire>,
    hb: Vec<HbWatch>,
    put_ack: Hist,
}

impl SocketObs {
    pub(super) fn new(n_procs: usize, heartbeat_period_ns: u64) -> Self {
        Self {
            heartbeat_period_ns,
            peers: (0..n_procs)
                .map(|_| PeerWire {
                    frames_tx: AtomicU64::new(0),
                    bytes_tx: AtomicU64::new(0),
                    frames_rx: AtomicU64::new(0),
                    bytes_rx: AtomicU64::new(0),
                    retries: AtomicU64::new(0),
                    reconnects: AtomicU64::new(0),
                })
                .collect(),
            hb: (0..n_procs)
                .map(|_| HbWatch {
                    last_arrival: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                    sum_period_ns: AtomicU64::new(0),
                    max_abs_dev_ns: AtomicU64::new(0),
                })
                .collect(),
            put_ack: Hist {
                count: AtomicU64::new(0),
                sum_ns: AtomicU64::new(0),
                max_ns: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            },
        }
    }

    #[inline]
    pub(super) fn wire_tx(&self, peer: usize, bytes: usize) {
        let p = &self.peers[peer];
        p.frames_tx.fetch_add(1, Ordering::Relaxed);
        p.bytes_tx.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(super) fn wire_rx(&self, peer: usize, bytes: usize) {
        let p = &self.peers[peer];
        p.frames_rx.fetch_add(1, Ordering::Relaxed);
        p.bytes_rx.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(super) fn dial_result(&self, peer: usize, retries: u64) {
        let p = &self.peers[peer];
        p.retries.fetch_add(retries, Ordering::Relaxed);
        if retries > 0 {
            p.reconnects.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub(super) fn put_ack(&self, service_ns: u64) {
        self.put_ack.record(service_ns);
    }

    /// A heartbeat from `peer` arrived at `now_ns` (fabric clock). Records
    /// the inter-arrival period and its deviation from the configured one.
    pub(super) fn heartbeat_seen(&self, peer: usize, now_ns: u64) {
        let w = &self.hb[peer];
        let prev = w.last_arrival.swap(now_ns.max(1), Ordering::Relaxed);
        if prev == 0 {
            return;
        }
        let period = now_ns.saturating_sub(prev);
        w.count.fetch_add(1, Ordering::Relaxed);
        w.sum_period_ns.fetch_add(period, Ordering::Relaxed);
        let dev = period.abs_diff(self.heartbeat_period_ns);
        w.max_abs_dev_ns.fetch_max(dev, Ordering::Relaxed);
    }

    pub(super) fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            heartbeat_period_ns: self.heartbeat_period_ns,
            peers: self
                .peers
                .iter()
                .map(|p| PeerWireSnapshot {
                    frames_tx: p.frames_tx.load(Ordering::Relaxed),
                    bytes_tx: p.bytes_tx.load(Ordering::Relaxed),
                    frames_rx: p.frames_rx.load(Ordering::Relaxed),
                    bytes_rx: p.bytes_rx.load(Ordering::Relaxed),
                    retries: p.retries.load(Ordering::Relaxed),
                    reconnects: p.reconnects.load(Ordering::Relaxed),
                })
                .collect(),
            heartbeats: self
                .hb
                .iter()
                .map(|w| HeartbeatSnapshot {
                    count: w.count.load(Ordering::Relaxed),
                    sum_period_ns: w.sum_period_ns.load(Ordering::Relaxed),
                    max_abs_dev_ns: w.max_abs_dev_ns.load(Ordering::Relaxed),
                })
                .collect(),
            put_ack: HistSnapshot {
                count: self.put_ack.count.load(Ordering::Relaxed),
                sum_ns: self.put_ack.sum_ns.load(Ordering::Relaxed),
                max_ns: self.put_ack.max_ns.load(Ordering::Relaxed),
                buckets: std::array::from_fn(|i| self.put_ack.buckets[i].load(Ordering::Relaxed)),
            },
        }
    }
}

// ---- plain-data snapshots --------------------------------------------

/// Wire traffic between this process and one peer process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeerWireSnapshot {
    /// Frames written to this peer.
    pub frames_tx: u64,
    /// Bytes written to this peer, including frame headers.
    pub bytes_tx: u64,
    /// Frames read from this peer.
    pub frames_rx: u64,
    /// Bytes read from this peer, including frame headers.
    pub bytes_rx: u64,
    /// Failed connect attempts to this peer that were retried.
    pub retries: u64,
    /// Whether connecting to this peer needed at least one retry (0/1,
    /// counted per established connection).
    pub reconnects: u64,
}

/// Heartbeat arrival statistics for one peer, as observed locally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeartbeatSnapshot {
    /// Inter-arrival periods observed (arrivals minus one).
    pub count: u64,
    /// Sum of observed inter-arrival periods (ns); mean = sum / count.
    pub sum_period_ns: u64,
    /// Largest absolute deviation of an observed period from the
    /// configured heartbeat period (ns) — the jitter headline.
    pub max_abs_dev_ns: u64,
}

impl HeartbeatSnapshot {
    /// Mean observed inter-arrival period (ns), 0 when nothing arrived.
    pub fn mean_period_ns(&self) -> u64 {
        self.sum_period_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A log2-bucket latency histogram (bucket `i` covers `[2^i, 2^(i+1))` ns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (ns).
    pub sum_ns: u64,
    /// Largest sample (ns).
    pub max_ns: u64,
    /// Per-bucket sample counts.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Mean sample (ns), 0 on an empty histogram.
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Nearest-rank percentile, resolved to the upper bound of the bucket
    /// holding the ⌈p/100·n⌉-th sample (histograms trade exactness for a
    /// fixed footprint). 0 on an empty histogram.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max_ns
    }
}

/// Snapshot of every `SocketObs` probe, indexed by peer process rank
/// (entries at this process's own rank stay zero).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsSnapshot {
    /// The configured heartbeat period (ns) jitter is measured against.
    pub heartbeat_period_ns: u64,
    /// Per-peer wire traffic.
    pub peers: Vec<PeerWireSnapshot>,
    /// Per-peer heartbeat arrival statistics.
    pub heartbeats: Vec<HeartbeatSnapshot>,
    /// Blocking put-ack service-time histogram (send → ack, all peers).
    pub put_ack: HistSnapshot,
}

// ---- the shipment ----------------------------------------------------

/// One process's complete observability snapshot: what it was doing
/// ([`StatsSnapshot`]), what its wires saw ([`ObsSnapshot`]), and — for
/// final/flight-recorder shipments — its retained trace-ring window.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeTelemetry {
    /// Sender's process (node) rank.
    pub node: u32,
    /// Why this was shipped.
    pub phase: TelemetryPhase,
    /// Send instant on the sender's fabric clock (ns since fabric start);
    /// receivers subtract it from their own receive instant to align the
    /// sender's clock (minimum over many shipments ≈ one-way delay).
    pub sent_at_ns: u64,
    /// Failure cause for [`TelemetryPhase::FlightRecorder`], else empty.
    pub cause: String,
    /// Global 0-based ranks of the images this process hosts.
    pub images: Vec<u32>,
    /// Fabric-wide operation counters at send time.
    pub stats: StatsSnapshot,
    /// Wire/latency/heartbeat probe snapshot.
    pub obs: ObsSnapshot,
    /// Retained trace events (empty for [`TelemetryPhase::Live`] and for
    /// capture-disabled builds).
    pub events: Vec<Event>,
}

impl NodeTelemetry {
    /// Encode to the versioned binary payload carried by
    /// [`Frame::Telemetry`](super::wire::Frame::Telemetry) and
    /// `CAF_TRACE_DIR` spill files.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(512 + self.events.len() * EVENT_WORDS * 8);
        put_u32(&mut b, TELEMETRY_MAGIC);
        b.push(self.phase as u8);
        put_u32(&mut b, self.node);
        put_u64(&mut b, self.sent_at_ns);
        put_bytes(&mut b, self.cause.as_bytes());
        put_u32(&mut b, self.images.len() as u32);
        for img in &self.images {
            put_u32(&mut b, *img);
        }
        put_stats(&mut b, &self.stats);
        put_u64(&mut b, self.obs.heartbeat_period_ns);
        put_u32(&mut b, self.obs.peers.len() as u32);
        for p in &self.obs.peers {
            for w in [
                p.frames_tx,
                p.bytes_tx,
                p.frames_rx,
                p.bytes_rx,
                p.retries,
                p.reconnects,
            ] {
                put_u64(&mut b, w);
            }
        }
        put_u32(&mut b, self.obs.heartbeats.len() as u32);
        for h in &self.obs.heartbeats {
            put_u64(&mut b, h.count);
            put_u64(&mut b, h.sum_period_ns);
            put_u64(&mut b, h.max_abs_dev_ns);
        }
        put_u64(&mut b, self.obs.put_ack.count);
        put_u64(&mut b, self.obs.put_ack.sum_ns);
        put_u64(&mut b, self.obs.put_ack.max_ns);
        for bucket in self.obs.put_ack.buckets {
            put_u64(&mut b, bucket);
        }
        put_u32(&mut b, self.events.len() as u32);
        for ev in &self.events {
            for w in ev.encode() {
                put_u64(&mut b, w);
            }
        }
        b
    }

    /// Decode a payload produced by [`NodeTelemetry::encode`]. Rejects
    /// version mismatches and truncated or oversized payloads.
    pub fn decode(payload: &[u8]) -> io::Result<NodeTelemetry> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let mut c = Cursor::new(payload);
        if c.u32()? != TELEMETRY_MAGIC {
            return Err(bad("telemetry payload version mismatch"));
        }
        let phase =
            TelemetryPhase::from_u8(c.take(1)?[0]).ok_or_else(|| bad("unknown telemetry phase"))?;
        let node = c.u32()?;
        let sent_at_ns = c.u64()?;
        let cause = c.string()?;
        let n_images = c.u32()? as usize;
        if n_images > 1 << 20 {
            return Err(bad("absurd image count in telemetry"));
        }
        let mut images = Vec::with_capacity(n_images);
        for _ in 0..n_images {
            images.push(c.u32()?);
        }
        let stats = c.stats()?;
        let heartbeat_period_ns = c.u64()?;
        let n_peers = c.u32()? as usize;
        if n_peers > 1 << 16 {
            return Err(bad("absurd peer count in telemetry"));
        }
        let mut peers = Vec::with_capacity(n_peers);
        for _ in 0..n_peers {
            peers.push(PeerWireSnapshot {
                frames_tx: c.u64()?,
                bytes_tx: c.u64()?,
                frames_rx: c.u64()?,
                bytes_rx: c.u64()?,
                retries: c.u64()?,
                reconnects: c.u64()?,
            });
        }
        let n_hb = c.u32()? as usize;
        if n_hb > 1 << 16 {
            return Err(bad("absurd heartbeat-watch count in telemetry"));
        }
        let mut heartbeats = Vec::with_capacity(n_hb);
        for _ in 0..n_hb {
            heartbeats.push(HeartbeatSnapshot {
                count: c.u64()?,
                sum_period_ns: c.u64()?,
                max_abs_dev_ns: c.u64()?,
            });
        }
        let put_ack = HistSnapshot {
            count: c.u64()?,
            sum_ns: c.u64()?,
            max_ns: c.u64()?,
            buckets: {
                let mut buckets = [0u64; HIST_BUCKETS];
                for b in &mut buckets {
                    *b = c.u64()?;
                }
                buckets
            },
        };
        let n_events = c.u32()? as usize;
        if n_events > 1 << 24 {
            return Err(bad("absurd event count in telemetry"));
        }
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let mut w = [0u64; EVENT_WORDS];
            for slot in &mut w {
                *slot = c.u64()?;
            }
            events.push(Event::decode(&w).ok_or_else(|| bad("bad event in telemetry"))?);
        }
        if !c.done() {
            return Err(bad("trailing bytes in telemetry payload"));
        }
        Ok(NodeTelemetry {
            node,
            phase,
            sent_at_ns,
            cause,
            images,
            stats,
            obs: ObsSnapshot {
                heartbeat_period_ns,
                peers,
                heartbeats,
                put_ack,
            },
            events,
        })
    }

    /// Render the last `per_image` retained events of every image as an
    /// indented block — this node's contribution to a merged fault report.
    /// Capture-disabled builds (no events) get an explicit pointer instead
    /// of silence, so the report still shows *which* nodes answered.
    pub fn render_window(&self, per_image: usize) -> String {
        if self.events.is_empty() {
            return "  (no trace events captured — build with the `trace` feature \
                    for per-image operation history)\n"
                .to_string();
        }
        let mut out = String::new();
        let mut by_img: std::collections::BTreeMap<u32, Vec<&Event>> =
            std::collections::BTreeMap::new();
        for ev in &self.events {
            by_img.entry(ev.img).or_default().push(ev);
        }
        for (img, evs) in by_img {
            let label = if img == caf_trace::SYSTEM_IMG {
                "system".to_string()
            } else {
                format!("image {img}")
            };
            out.push_str(&format!("  {label} recent events:\n"));
            for ev in evs.iter().rev().take(per_image).rev() {
                out.push_str(&format!("    {}\n", ev.render()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_trace::EventKind;

    fn sample() -> NodeTelemetry {
        NodeTelemetry {
            node: 1,
            phase: TelemetryPhase::FlightRecorder,
            sent_at_ns: 123_456_789,
            cause: "peer process 0 is dead".into(),
            images: vec![4, 5, 6, 7],
            stats: StatsSnapshot {
                puts_inter: 42,
                bytes_inter: 9000,
                wire_frames_tx: 100,
                ..StatsSnapshot::default()
            },
            obs: ObsSnapshot {
                heartbeat_period_ns: 100_000_000,
                peers: vec![
                    PeerWireSnapshot {
                        frames_tx: 10,
                        bytes_tx: 640,
                        frames_rx: 9,
                        bytes_rx: 500,
                        retries: 2,
                        reconnects: 1,
                    },
                    PeerWireSnapshot::default(),
                ],
                heartbeats: vec![
                    HeartbeatSnapshot {
                        count: 7,
                        sum_period_ns: 700_000_000,
                        max_abs_dev_ns: 5_000_000,
                    },
                    HeartbeatSnapshot::default(),
                ],
                put_ack: {
                    let mut h = HistSnapshot {
                        count: 3,
                        sum_ns: 7_000,
                        max_ns: 4_096,
                        ..HistSnapshot::default()
                    };
                    h.buckets[10] = 2;
                    h.buckets[12] = 1;
                    h
                },
            },
            events: vec![
                Event::span(EventKind::Put, 10, 5).a(2).b(64),
                Event::instant(EventKind::FlagAdd, 20).a(0),
            ],
        }
    }

    #[test]
    fn telemetry_roundtrips() {
        let t = sample();
        let enc = t.encode();
        let back = NodeTelemetry::decode(&enc).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn decode_rejects_bad_payloads() {
        assert!(NodeTelemetry::decode(&[]).is_err());
        // Wrong magic.
        let mut enc = sample().encode();
        enc[0] ^= 0xFF;
        assert!(NodeTelemetry::decode(&enc).is_err());
        // Truncation anywhere must error, never panic.
        let enc = sample().encode();
        for cut in [4, 9, 20, enc.len() - 1] {
            assert!(NodeTelemetry::decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing junk.
        let mut enc = sample().encode();
        enc.push(0);
        assert!(NodeTelemetry::decode(&enc).is_err());
    }

    #[test]
    fn hist_percentiles_resolve_to_bucket_bounds() {
        let mut h = HistSnapshot::default();
        // 90 samples in bucket 4 ([16,32) ns), 10 in bucket 10 ([1024,2048)).
        h.buckets[4] = 90;
        h.buckets[10] = 10;
        h.count = 100;
        h.sum_ns = 90 * 20 + 10 * 1500;
        h.max_ns = 2000;
        assert_eq!(h.percentile_ns(50.0), 32);
        assert_eq!(h.percentile_ns(90.0), 32);
        assert_eq!(h.percentile_ns(95.0), 2048);
        assert_eq!(h.percentile_ns(99.0), 2048);
        assert_eq!(HistSnapshot::default().percentile_ns(50.0), 0);
    }

    #[test]
    fn hist_records_into_log2_buckets() {
        let obs = SocketObs::new(2, 1_000_000);
        obs.put_ack(1); // bucket 0
        obs.put_ack(1024); // bucket 10
        obs.put_ack(1025); // bucket 10
        obs.put_ack(u64::MAX); // clamped to the top bucket
        let s = obs.snapshot();
        assert_eq!(s.put_ack.count, 4);
        assert_eq!(s.put_ack.buckets[0], 1);
        assert_eq!(s.put_ack.buckets[10], 2);
        assert_eq!(s.put_ack.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(s.put_ack.max_ns, u64::MAX);
    }

    #[test]
    fn heartbeat_watch_measures_period_and_jitter() {
        let period = 100u64;
        let obs = SocketObs::new(2, period);
        obs.heartbeat_seen(1, 1000); // first arrival: no period yet
        obs.heartbeat_seen(1, 1100); // period 100, dev 0
        obs.heartbeat_seen(1, 1350); // period 250, dev 150
        let s = obs.snapshot();
        assert_eq!(s.heartbeats[1].count, 2);
        assert_eq!(s.heartbeats[1].mean_period_ns(), 175);
        assert_eq!(s.heartbeats[1].max_abs_dev_ns, 150);
        assert_eq!(s.heartbeats[0], HeartbeatSnapshot::default());
    }

    #[test]
    fn render_window_groups_by_image() {
        let t = sample();
        let w = t.render_window(5);
        assert!(w.contains("image 0 recent events"), "{w}");
        assert!(w.contains("put"), "{w}");
        let empty = NodeTelemetry {
            events: Vec::new(),
            ..sample()
        };
        assert!(empty.render_window(5).contains("no trace events captured"));
    }
}
