//! Active messages: small one-sided ops executed at the target image,
//! aggregated per destination before they touch the fabric.
//!
//! The hierarchy-aware collectives decompose into storms of tiny puts and
//! flag bumps; issued one at a time, each is a full fabric call (and, on
//! [`SocketFabric`](crate::SocketFabric), its own length-prefixed frame).
//! This tier buffers them as [`AmOp`] values in a per-destination
//! [`Batcher`] and hands whole batches to
//! [`Fabric::am_deliver`](crate::Fabric::am_deliver): one wire frame on the
//! socket fabric, one scheduled delivery event on the simulator, one
//! injected-delay window on the thread fabric.
//!
//! Ordering contract: ops to the *same* destination are delivered in
//! program order (batches never reorder internally, and a destination's
//! buffer is flushed before any direct nonblocking put to it issued through
//! [`Am::put_nb`]). [`Am::quiet`] flushes every buffer and then runs the
//! fabric-level quiet, so it means remote completion of every batched AM.
//! Callers that block on a fabric-level wait must flush first —
//! [`Am::flush`] is the fence.

use crate::batch::{AmPolicy, Batcher};
use crate::seg::{FlagId, SegmentId};
use crate::socket::wire::{put_u32, put_u64, Cursor};
use crate::{ArcFabric, ProcId, PutToken};
use std::io;

const OP_PUT: u8 = 1;
const OP_FLAG_ADD: u8 = 2;
const OP_AMO_ADD: u8 = 3;
const OP_PUT_FLAG: u8 = 4;

/// Guard against absurd payload lengths in a decoded op (a corrupted
/// header must fail before it drives a huge allocation).
const MAX_OP_DATA: usize = 16 << 20;

/// One active-message operation: a small one-sided effect applied at the
/// target image. The enum is closed — every variant is serializable and
/// idempotence-free, so a batch replays exactly once, in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AmOp {
    /// Write `data` into the target's segment at `off`.
    Put {
        /// Target segment.
        seg: SegmentId,
        /// Byte offset within the segment.
        off: usize,
        /// Payload.
        data: Vec<u8>,
    },
    /// Accumulate `delta` into the target's sync flag.
    FlagAdd {
        /// Target flag.
        flag: FlagId,
        /// Increment.
        delta: u64,
    },
    /// Atomic wrapping add of `delta` to the `u64` cell at `off`.
    AmoAdd {
        /// Target segment.
        seg: SegmentId,
        /// Byte offset (8-byte aligned) of the cell.
        off: usize,
        /// Addend.
        delta: u64,
    },
    /// Fused payload + doorbell: write `data`, then bump `flag` — the
    /// batcher folds an adjacent put/flag_add pair into this.
    PutFlag {
        /// Target segment.
        seg: SegmentId,
        /// Byte offset within the segment.
        off: usize,
        /// Payload.
        data: Vec<u8>,
        /// Flag bumped after the write.
        flag: FlagId,
        /// Increment.
        delta: u64,
    },
}

impl AmOp {
    /// Encoded size in bytes (tag + fields) — the batcher's byte budget and
    /// the simulator's modeled transfer size both use this.
    pub fn wire_len(&self) -> usize {
        match self {
            AmOp::Put { data, .. } => 1 + 8 + 8 + 4 + data.len(),
            AmOp::FlagAdd { .. } => 1 + 8 + 8,
            AmOp::AmoAdd { .. } => 1 + 8 + 8 + 8,
            AmOp::PutFlag { data, .. } => 1 + 8 + 8 + 4 + data.len() + 8 + 8,
        }
    }

    /// User payload bytes carried (0 for pure flag/amo ops) — the
    /// bytes-per-op stats numerator.
    pub fn payload_len(&self) -> usize {
        match self {
            AmOp::Put { data, .. } | AmOp::PutFlag { data, .. } => data.len(),
            AmOp::FlagAdd { .. } | AmOp::AmoAdd { .. } => 0,
        }
    }

    /// Append the little-endian encoding to `buf`.
    pub(crate) fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            AmOp::Put { seg, off, data } => {
                buf.push(OP_PUT);
                put_u64(buf, seg.0 as u64);
                put_u64(buf, *off as u64);
                put_u32(buf, data.len() as u32);
                buf.extend_from_slice(data);
            }
            AmOp::FlagAdd { flag, delta } => {
                buf.push(OP_FLAG_ADD);
                put_u64(buf, flag.0 as u64);
                put_u64(buf, *delta);
            }
            AmOp::AmoAdd { seg, off, delta } => {
                buf.push(OP_AMO_ADD);
                put_u64(buf, seg.0 as u64);
                put_u64(buf, *off as u64);
                put_u64(buf, *delta);
            }
            AmOp::PutFlag {
                seg,
                off,
                data,
                flag,
                delta,
            } => {
                buf.push(OP_PUT_FLAG);
                put_u64(buf, seg.0 as u64);
                put_u64(buf, *off as u64);
                put_u32(buf, data.len() as u32);
                buf.extend_from_slice(data);
                put_u64(buf, flag.0 as u64);
                put_u64(buf, *delta);
            }
        }
    }

    /// Decode one op at the cursor. Every length is validated before it is
    /// trusted — a corrupted batch body must surface as `InvalidData`, never
    /// a panic or an absurd allocation.
    pub(crate) fn decode(c: &mut Cursor<'_>) -> io::Result<AmOp> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let tag = c.take(1)?[0];
        Ok(match tag {
            OP_PUT | OP_PUT_FLAG => {
                let seg = SegmentId(c.u64()? as usize);
                let off = c.u64()? as usize;
                let n = c.u32()? as usize;
                if n > MAX_OP_DATA {
                    return Err(bad("absurd am payload length"));
                }
                let data = c.take(n)?.to_vec();
                if tag == OP_PUT {
                    AmOp::Put { seg, off, data }
                } else {
                    AmOp::PutFlag {
                        seg,
                        off,
                        data,
                        flag: FlagId(c.u64()? as usize),
                        delta: c.u64()?,
                    }
                }
            }
            OP_FLAG_ADD => AmOp::FlagAdd {
                flag: FlagId(c.u64()? as usize),
                delta: c.u64()?,
            },
            OP_AMO_ADD => AmOp::AmoAdd {
                seg: SegmentId(c.u64()? as usize),
                off: c.u64()? as usize,
                delta: c.u64()?,
            },
            _ => return Err(bad("unknown am op tag")),
        })
    }
}

/// An image's active-message sender: buffers [`AmOp`]s per destination and
/// delivers whole batches through the owning fabric.
///
/// One `Am` belongs to one image (`me`); it is not shared across images.
/// Construct with [`AmPolicy::from_cost`] for the fabric-derived flush
/// thresholds or [`AmPolicy::unbatched`] for the reference behavior.
pub struct Am {
    fabric: ArcFabric,
    me: ProcId,
    batcher: Batcher,
}

impl Am {
    /// A sender for image `me` on `fabric` with the given flush policy.
    pub fn new(fabric: ArcFabric, me: ProcId, policy: AmPolicy) -> Self {
        Self {
            fabric,
            me,
            batcher: Batcher::new(policy),
        }
    }

    /// The issuing image.
    pub fn me(&self) -> ProcId {
        self.me
    }

    /// Ops currently buffered (all destinations).
    pub fn pending_ops(&self) -> usize {
        self.batcher.pending_ops()
    }

    /// Buffer a put of `data` into `dst`'s segment.
    pub fn put(&mut self, dst: ProcId, seg: SegmentId, off: usize, data: &[u8]) {
        self.inject(
            dst,
            AmOp::Put {
                seg,
                off,
                data: data.to_vec(),
            },
        );
    }

    /// Buffer a flag bump at `dst`.
    pub fn flag_add(&mut self, dst: ProcId, flag: FlagId, delta: u64) {
        self.inject(dst, AmOp::FlagAdd { flag, delta });
    }

    /// Buffer an atomic add to a `u64` cell at `dst`.
    pub fn amo_add(&mut self, dst: ProcId, seg: SegmentId, off: usize, delta: u64) {
        self.inject(dst, AmOp::AmoAdd { seg, off, delta });
    }

    /// Buffer a fused payload+doorbell op.
    pub fn put_flag(
        &mut self,
        dst: ProcId,
        seg: SegmentId,
        off: usize,
        data: &[u8],
        flag: FlagId,
        delta: u64,
    ) {
        self.inject(
            dst,
            AmOp::PutFlag {
                seg,
                off,
                data: data.to_vec(),
                flag,
                delta,
            },
        );
    }

    /// Direct nonblocking put that preserves per-destination program order:
    /// `dst`'s buffered AMs are flushed first, then the put is injected on
    /// the underlying fabric.
    pub fn put_nb(&mut self, dst: ProcId, seg: SegmentId, off: usize, data: &[u8]) -> PutToken {
        self.flush_dst(dst);
        self.fabric.put_nb(self.me, dst, seg, off, data)
    }

    /// Flush `dst`'s buffered ops, if any.
    pub fn flush_dst(&mut self, dst: ProcId) {
        if let Some(ops) = self.batcher.take(dst.index()) {
            self.deliver(dst.index(), ops);
        }
    }

    /// Fence: flush every destination's buffer, in ascending destination
    /// order. After this returns, every previously injected AM has been
    /// handed to the fabric (remote completion still needs [`Am::quiet`]).
    pub fn flush(&mut self) {
        for (dst, ops) in self.batcher.drain_all() {
            self.deliver(dst, ops);
        }
    }

    /// Flush everything, then wait for remote completion of all outstanding
    /// one-sided traffic from this image (including the batches just sent).
    pub fn quiet(&mut self) {
        self.flush();
        self.fabric.quiet(self.me);
    }

    fn inject(&mut self, dst: ProcId, op: AmOp) {
        let stats = self.fabric.stats();
        stats.record_am_inject(op.payload_len() as u64);
        let now = self.fabric.now_ns(self.me);
        let fused_before = self.batcher.fused();
        if let Some(ops) = self.batcher.push(dst.index(), op, now) {
            self.deliver(dst.index(), ops);
        }
        if self.batcher.fused() > fused_before {
            stats.record_am_fused();
        }
        // Age-based drain: destinations whose oldest op has waited longer
        // than the policy allows ride along on this inject.
        for d in self.batcher.stale(now) {
            if let Some(ops) = self.batcher.take(d) {
                self.deliver(d, ops);
            }
        }
    }

    fn deliver(&self, dst: usize, ops: Vec<AmOp>) {
        self.fabric.stats().record_am_flush();
        self.fabric.am_deliver(self.me, ProcId(dst), &ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(op: AmOp) {
        let mut buf = Vec::new();
        op.encode(&mut buf);
        assert_eq!(buf.len(), op.wire_len(), "wire_len matches encoding");
        let mut c = Cursor::new(&buf);
        let back = AmOp::decode(&mut c).unwrap();
        assert!(c.done());
        assert_eq!(back, op);
    }

    #[test]
    fn ops_roundtrip() {
        roundtrip(AmOp::Put {
            seg: SegmentId(3),
            off: 4096,
            data: vec![1, 2, 3, 4, 5, 6, 7, 8],
        });
        roundtrip(AmOp::FlagAdd {
            flag: FlagId(2),
            delta: 7,
        });
        roundtrip(AmOp::AmoAdd {
            seg: SegmentId(0),
            off: 16,
            delta: u64::MAX,
        });
        roundtrip(AmOp::PutFlag {
            seg: SegmentId(1),
            off: 64,
            data: vec![9; 32],
            flag: FlagId(5),
            delta: 1,
        });
    }

    #[test]
    fn decode_rejects_corrupt_ops() {
        // Unknown tag.
        let mut c = Cursor::new(&[0xEE, 0, 0, 0]);
        assert!(AmOp::decode(&mut c).is_err());
        // Truncated put header.
        let mut buf = Vec::new();
        AmOp::Put {
            seg: SegmentId(0),
            off: 0,
            data: vec![1, 2, 3],
        }
        .encode(&mut buf);
        let mut c = Cursor::new(&buf[..buf.len() - 2]);
        assert!(AmOp::decode(&mut c).is_err());
        // Payload length larger than the remaining body.
        let mut buf = Vec::new();
        buf.push(super::OP_PUT);
        put_u64(&mut buf, 0);
        put_u64(&mut buf, 0);
        put_u32(&mut buf, 1 << 30); // claims 1 GiB follows
        let mut c = Cursor::new(&buf);
        assert!(AmOp::decode(&mut c).is_err());
    }
}
