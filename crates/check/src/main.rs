//! The `caf-check` binary: sweep the built-in conformance program over
//! {default sim, chaos × seeds (with faults), real threads} × scenarios ×
//! the collective-algorithm matrix. Exit 0 on a clean sweep, 1 with a
//! replayable report on the first divergence.

use caf_check::{algo_matrix, check_program, conformance, CheckOptions, Program, Scenario};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    deep: bool,
    seeds_per_cell: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut deep = false;
    let mut seeds_per_cell = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => deep = false,
            "--deep" => deep = true,
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                seeds_per_cell = Some(v.parse().map_err(|e| format!("bad --seeds {v:?}: {e}"))?);
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?}\n\
                     usage: caf-check [--quick|--deep] [--seeds N]\n\
                     env:   CAF_CHECK_SEED=N   replay exactly one chaos seed"
                ))
            }
        }
    }
    Ok(Args {
        deep,
        seeds_per_cell,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Quick: bounded sweep for CI (≤ ~1 min); deep: the nightly/manual
    // soak. Threads differencing runs only on the small scenario in quick
    // mode (real threads on shared CI cores are the slow part).
    let seeds_per_cell = args
        .seeds_per_cell
        .unwrap_or(if args.deep { 32 } else { 6 });
    let scenarios = [Scenario::mini(), Scenario::whale()];
    let matrix = algo_matrix();
    let prog: Program = Arc::new(conformance);

    let t0 = Instant::now();
    let (mut runs, mut chaos_runs, mut fault_runs) = (0usize, 0usize, 0usize);
    for scn in &scenarios {
        let cell_t0 = Instant::now();
        for (cell, (name, algo)) in matrix.iter().enumerate() {
            let opts = CheckOptions {
                // Distinct seeds per cell: the sweep explores
                // scenarios × algos × seeds_per_cell different schedules.
                seeds: (0..seeds_per_cell as u64)
                    .map(|k| 1 + cell as u64 * 1_000 + k)
                    .collect(),
                faults: true,
                threads: args.deep || scn.images <= 8,
                trace_window: 5,
            };
            match check_program(scn, name, *algo, &prog, &opts) {
                Ok(r) => {
                    runs += r.runs;
                    chaos_runs += r.chaos_runs;
                    fault_runs += r.fault_runs;
                }
                Err(failure) => {
                    eprintln!("{}", failure.render());
                    return ExitCode::FAILURE;
                }
            }
        }
        println!(
            "caf-check: scenario {} clean ({} algo configs, {:.1}s)",
            scn.name,
            matrix.len(),
            cell_t0.elapsed().as_secs_f64()
        );
    }
    println!(
        "caf-check: all outputs matched — {} runs ({} chaos, {} with faults) \
         across {} scenarios x {} algo configs in {:.1}s",
        runs,
        chaos_runs,
        fault_runs,
        scenarios.len(),
        matrix.len(),
        t0.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
