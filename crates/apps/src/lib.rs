//! # caf-apps
//!
//! Application kernels written against the `caf-rs` runtime — the style of
//! workload the paper's introduction motivates teams with: "decompose
//! applications into subproblems that may be worked upon concurrently, and
//! organize this work among subsets of image teams".
//!
//! * [`cg`] — a distributed conjugate-gradient solver for the 5-point
//!   Laplacian: halo exchange with `sync images`, dot products with
//!   `co_sum` (latency-bound allreduces — exactly the collective the
//!   paper's two-level reduction accelerates).
//! * [`mod@jacobi2d`] — 2-D Jacobi iteration on a P×Q image grid with row/
//!   column neighbor halos and a periodic `co_max` residual check.
//! * [`montecarlo`] — embarrassingly parallel π estimation where disjoint
//!   teams estimate independently (no global synchronization) before one
//!   final cross-team combine.
//!
//! All kernels run unchanged on the virtual-time simulator and the real
//! threads fabric, and account their flops to the simulated clock.

#![warn(missing_docs)]

pub mod cg;
pub mod jacobi2d;
pub mod montecarlo;

pub use cg::{cg_solve, CgConfig, CgOutcome};
pub use jacobi2d::{jacobi2d, Jacobi2dConfig, Jacobi2dOutcome};
pub use montecarlo::{pi_teams, PiConfig, PiOutcome};
