//! Gather and scatter collectives — extensions beyond the paper's three
//! (barrier/reduction/broadcast), built with the same §IV-A methodology:
//! the 2-level variants route through node leaders so only one message per
//! node crosses the network, while members talk to their leader over
//! shared memory.
//!
//! * `co_gather(root)`: every member contributes `len` elements; the root
//!   receives the concatenation in team-rank order.
//! * `co_scatter(root)`: the root holds `n·len` elements; member `r`
//!   receives slice `r`.
//!
//! # Flow control
//!
//! Like broadcast, these have rotating roots, so slot reuse needs explicit
//! fencing:
//! * gather runs **data up → release down**: the root releases (through
//!   the same leader tree) once it has consumed everything, and members
//!   return only on their release — so nobody's era-`e+1` contribution can
//!   land in a leader/root slot still holding era `e`.
//! * scatter runs **data down → ack up → release down**: members ack after
//!   reading, the root collects every ack and then releases; members
//!   return only on their release. The release is what protects member
//!   slots across eras — roots rotate, so era `e+1`'s (different) root
//!   must not start until era `e` was read everywhere.

use crate::comm::{flag, TeamComm};
use crate::config::GatherAlgo;
use crate::value::{bytes_to_slice, CoValue};

/// All-to-all personalized exchange over a ring schedule; see
/// [`TeamComm::co_alltoall`]. Every image deposits slice `j` into rank
/// `j`'s region at slot `my_rank`, staggered so step `k` pairs
/// `(rank, rank+k)` — no hot spot. The trailing team barrier fences the
/// region: nobody enters era `e+1` before everyone consumed era `e`.
pub(crate) fn alltoall<T: CoValue>(comm: &mut TeamComm, send: &[T], len: usize) -> Vec<T> {
    let n = comm.size();
    assert_eq!(send.len(), n * len, "alltoall send buffer must be n*len");
    comm.epochs.alltoall += 1;
    let era = comm.epochs.alltoall;
    let mut out = vec![T::load(&vec![0u8; T::SIZE]); n * len];
    // My own slice moves locally.
    out[comm.rank * len..(comm.rank + 1) * len]
        .copy_from_slice(&send[comm.rank * len..(comm.rank + 1) * len]);
    if n == 1 {
        return out;
    }
    comm.ensure_gather((len * T::SIZE).max(1));
    let gs = comm.gather_slot_bytes;
    for k in 1..n {
        let to = (comm.rank + k) % n;
        comm.send_values_gather(to, comm.rank, &send[to * len..(to + 1) * len]);
        comm.add_flag(to, flag::A2A_ARRIVE, 1);
    }
    comm.wait_flag(flag::A2A_ARRIVE, (n as u64 - 1) * era);
    let mut bytes = comm.take_stage(n * gs);
    comm.read_my_gather(0, &mut bytes);
    for r in 0..n {
        if r != comm.rank {
            bytes_to_slice(
                &bytes[r * gs..r * gs + len * T::SIZE],
                &mut out[r * len..(r + 1) * len],
            );
        }
    }
    comm.restore_stage(bytes);
    comm.barrier();
    out
}

/// Collective gather; see module docs. `mine.len()` must match on every
/// member; returns `Some(concatenation)` on the root, `None` elsewhere.
pub(crate) fn gather<T: CoValue>(comm: &mut TeamComm, mine: &[T], root: usize) -> Option<Vec<T>> {
    assert!(root < comm.size(), "gather root {root} out of team");
    comm.epochs.gather += 1;
    let n = comm.size();
    if n == 1 {
        return Some(mine.to_vec());
    }
    let nbytes = mine.len() * T::SIZE;
    comm.ensure_gather(nbytes.max(1));
    match comm.gather_algo {
        GatherAlgo::FlatLinear => gather_flat(comm, mine, root),
        GatherAlgo::TwoLevel => gather_two_level(comm, mine, root),
        GatherAlgo::Auto => unreachable!("Auto resolved at formation"),
    }
}

fn read_all_slots<T: CoValue>(comm: &mut TeamComm, len: usize, order: &[usize]) -> Vec<T> {
    // Read slot `order[i]`'s payload as the contribution of team rank i.
    let n = comm.size();
    let gs = comm.gather_slot_bytes;
    let mut bytes = comm.take_stage(n * gs);
    comm.read_my_gather(0, &mut bytes);
    let mut out = vec![T::load(&vec![0u8; T::SIZE]); n * len];
    for (rank, &slot) in order.iter().enumerate() {
        let src = &bytes[slot * gs..slot * gs + len * T::SIZE];
        bytes_to_slice(src, &mut out[rank * len..(rank + 1) * len]);
    }
    comm.restore_stage(bytes);
    out
}

fn gather_flat<T: CoValue>(comm: &mut TeamComm, mine: &[T], root: usize) -> Option<Vec<T>> {
    let n = comm.size();
    if comm.rank == root {
        // Deposit my own contribution locally, collect the rest.
        comm.send_values_gather(root, comm.rank, mine);
        comm.epochs.gather_arrived += n as u64 - 1;
        comm.wait_flag(flag::GA_ARRIVE, comm.epochs.gather_arrived);
        let order: Vec<usize> = (0..n).collect();
        let out = read_all_slots(comm, mine.len(), &order);
        for j in 0..n {
            if j != root {
                comm.add_flag(j, flag::GA_DONE, 1);
            }
        }
        Some(out)
    } else {
        comm.send_values_gather(root, comm.rank, mine);
        comm.add_flag(root, flag::GA_ARRIVE, 1);
        comm.epochs.gather_released += 1;
        comm.wait_flag(flag::GA_DONE, comm.epochs.gather_released);
        None
    }
}

fn gather_two_level<T: CoValue>(comm: &mut TeamComm, mine: &[T], root: usize) -> Option<Vec<T>> {
    let hier = comm.hier.clone();
    let root_set = hier.leader_index_of(root);
    let my_set = hier.leader_index_of(comm.rank);
    let eff_leader_of = |s: usize| -> usize {
        if s == root_set {
            root
        } else {
            hier.sets()[s].leader
        }
    };
    let el = eff_leader_of(my_set);
    let len = mine.len();

    // Slot map: contributions are stored by (set, position-within-set):
    // slot(rank) = prefix[set(rank)] + pos(rank). This makes each node's
    // block contiguous so leaders forward ONE message per node.
    let mut prefix = vec![0usize; hier.n_nodes() + 1];
    for (s, set) in hier.sets().iter().enumerate() {
        prefix[s + 1] = prefix[s] + set.len();
    }
    let my_pos = hier.sets()[my_set]
        .ranks
        .iter()
        .position(|&r| r == comm.rank)
        .expect("member of own set");
    let my_slot = prefix[my_set] + my_pos;

    if comm.rank != el {
        // Stage 1: contribute to my effective leader's region.
        comm.send_values_gather(el, my_slot, mine);
        comm.add_flag(el, flag::GA_ARRIVE, 1);
        comm.epochs.gather_released += 1;
        comm.wait_flag(flag::GA_DONE, comm.epochs.gather_released);
        return None;
    }

    // Effective leader: deposit my own contribution...
    comm.send_values_gather(el, my_slot, mine);
    // ...and wait for the rest of my node (minus root's extra member:
    // within root's set the nominal leader contributes like anyone else).
    let locals = hier.sets()[my_set].len() as u64 - 1;
    if locals > 0 {
        comm.epochs.gather_arrived += locals;
        comm.wait_flag(flag::GA_ARRIVE, comm.epochs.gather_arrived);
    }

    if comm.rank == root {
        // Root: wait for every other node's block (one notification each).
        let other_nodes = hier.n_nodes() as u64 - 1;
        if other_nodes > 0 {
            comm.epochs.gather_arrived += other_nodes;
            comm.wait_flag(flag::GA_ARRIVE, comm.epochs.gather_arrived);
        }
        // Reorder: rank r's data sits at slot prefix[set]+pos.
        let mut order = vec![0usize; comm.size()];
        for (s, set) in hier.sets().iter().enumerate() {
            for (pos, &r) in set.ranks.iter().enumerate() {
                order[r] = prefix[s] + pos;
            }
        }
        let out = read_all_slots(comm, len, &order);
        // Release wave: root -> leaders -> members.
        for (s, _) in hier.sets().iter().enumerate() {
            let l = eff_leader_of(s);
            if l != root {
                comm.add_flag(l, flag::GA_DONE, 1);
            }
        }
        for &m in hier.sets()[root_set].ranks.iter() {
            if m != root {
                comm.add_flag(m, flag::GA_DONE, 1);
            }
        }
        Some(out)
    } else {
        // Forward my node's contiguous block to the root in one put.
        let gs = comm.gather_slot_bytes;
        let base = prefix[my_set];
        let count = hier.sets()[my_set].len();
        let mut block = comm.take_stage(count * gs);
        comm.read_my_gather(base * gs, &mut block);
        comm.put_gather_raw(root, base * gs, &block);
        comm.restore_stage(block);
        comm.add_flag(root, flag::GA_ARRIVE, 1);
        // Await my release, then release my members.
        comm.epochs.gather_released += 1;
        comm.wait_flag(flag::GA_DONE, comm.epochs.gather_released);
        for &m in hier.sets()[my_set].ranks.iter() {
            if m != el {
                comm.add_flag(m, flag::GA_DONE, 1);
            }
        }
        None
    }
}

/// Collective scatter; see module docs. On the root, `all` must hold
/// `n·len` elements (`len` = `out.len()`, matching on every member); every
/// member's `out` receives its slice.
pub(crate) fn scatter<T: CoValue>(
    comm: &mut TeamComm,
    all: Option<&[T]>,
    out: &mut [T],
    root: usize,
) {
    assert!(root < comm.size(), "scatter root {root} out of team");
    comm.epochs.scatter += 1;
    let n = comm.size();
    let len = out.len();
    if comm.rank == root {
        let all = all.expect("root must supply the source buffer");
        assert_eq!(
            all.len(),
            n * len,
            "scatter source must hold n*len elements"
        );
        out.copy_from_slice(&all[root * len..(root + 1) * len]);
        if n == 1 {
            return;
        }
    } else if n == 1 {
        return;
    }
    comm.ensure_gather((len * T::SIZE).max(1));
    match comm.gather_algo {
        GatherAlgo::FlatLinear => scatter_flat(comm, all, out, root),
        GatherAlgo::TwoLevel => scatter_two_level(comm, all, out, root),
        GatherAlgo::Auto => unreachable!("Auto resolved at formation"),
    }
}

fn scatter_flat<T: CoValue>(comm: &mut TeamComm, all: Option<&[T]>, out: &mut [T], root: usize) {
    let n = comm.size();
    let len = out.len();
    if comm.rank == root {
        let all = all.expect("root buffer");
        for j in 0..n {
            if j != root {
                // Each member's slice goes into ITS slot 0.
                comm.send_values_gather(j, 0, &all[j * len..(j + 1) * len]);
                comm.add_flag(j, flag::SC_ARRIVE, 1);
            }
        }
        comm.epochs.scatter_acked += n as u64 - 1;
        comm.wait_flag(flag::SC_ACK, comm.epochs.scatter_acked);
        for j in 0..n {
            if j != root {
                comm.add_flag(j, flag::SC_DONE, 1);
            }
        }
    } else {
        comm.epochs.scatter_arrived += 1;
        comm.wait_flag(flag::SC_ARRIVE, comm.epochs.scatter_arrived);
        comm.load_from_gather(0, out);
        comm.add_flag(root, flag::SC_ACK, 1);
        comm.epochs.scatter_released += 1;
        comm.wait_flag(flag::SC_DONE, comm.epochs.scatter_released);
    }
}

fn scatter_two_level<T: CoValue>(
    comm: &mut TeamComm,
    all: Option<&[T]>,
    out: &mut [T],
    root: usize,
) {
    let hier = comm.hier.clone();
    let root_set = hier.leader_index_of(root);
    let my_set = hier.leader_index_of(comm.rank);
    let eff_leader_of = |s: usize| -> usize {
        if s == root_set {
            root
        } else {
            hier.sets()[s].leader
        }
    };
    let el = eff_leader_of(my_set);
    let len = out.len();
    let gs = comm.gather_slot_bytes;

    if comm.rank == root {
        let all = all.expect("root buffer");
        // Stage 1: one contiguous block per other node, ordered by that
        // node's member positions (slots 0..set_len on the leader).
        for (s, set) in hier.sets().iter().enumerate() {
            let l = eff_leader_of(s);
            if s == root_set {
                continue;
            }
            let mut block = comm.take_stage(set.len() * gs);
            block.iter_mut().for_each(|b| *b = 0);
            for (pos, &r) in set.ranks.iter().enumerate() {
                // Serialize rank r's slice directly into the block.
                let dst = &mut block[pos * gs..pos * gs + len * T::SIZE];
                for (i, v) in all[r * len..(r + 1) * len].iter().enumerate() {
                    v.store(&mut dst[i * T::SIZE..(i + 1) * T::SIZE]);
                }
            }
            comm.put_gather_raw(l, 0, &block);
            comm.restore_stage(block);
            comm.add_flag(l, flag::SC_ARRIVE, 1);
        }
        // Root acts as its own node's leader: deliver locally.
        for (pos, &r) in hier.sets()[root_set].ranks.iter().enumerate() {
            let _ = pos;
            if r != root {
                comm.send_values_gather(r, 0, &all[r * len..(r + 1) * len]);
                comm.add_flag(r, flag::SC_ARRIVE, 1);
            }
        }
        // Wait for every member's ack (directly counted at the root),
        // then release through the leader tree.
        comm.epochs.scatter_acked += comm.size() as u64 - 1;
        comm.wait_flag(flag::SC_ACK, comm.epochs.scatter_acked);
        for (s, _) in hier.sets().iter().enumerate() {
            let l = eff_leader_of(s);
            if l != root {
                comm.add_flag(l, flag::SC_DONE, 1);
            }
        }
        for &m in hier.sets()[root_set].ranks.iter() {
            if m != root {
                comm.add_flag(m, flag::SC_DONE, 1);
            }
        }
        return;
    }

    if comm.rank == el {
        // Leader of a non-root node: receive my node's block, fan out.
        comm.epochs.scatter_arrived += 1;
        comm.wait_flag(flag::SC_ARRIVE, comm.epochs.scatter_arrived);
        let set_len = hier.sets()[my_set].len();
        let mut block = comm.take_stage(set_len * gs);
        comm.read_my_gather(0, &mut block);
        let set = &hier.sets()[my_set];
        let my_pos = set
            .ranks
            .iter()
            .position(|&r| r == comm.rank)
            .expect("member");
        bytes_to_slice(&block[my_pos * gs..my_pos * gs + len * T::SIZE], out);
        for (pos, &r) in set.ranks.iter().enumerate() {
            if r != el {
                // Forward slice `pos` into member r's slot 1 (slot 0 would
                // also work — each image owns its whole region — but a
                // distinct slot keeps root-direct and leader-forwarded
                // deliveries from ever aliasing).
                comm.put_gather_raw(r, gs, &block[pos * gs..(pos + 1) * gs]);
                comm.add_flag(r, flag::SC_ARRIVE, 1);
            }
        }
        comm.restore_stage(block);
        comm.add_flag(root, flag::SC_ACK, 1);
        // Await my release, then release my members.
        comm.epochs.scatter_released += 1;
        comm.wait_flag(flag::SC_DONE, comm.epochs.scatter_released);
        for &m in set.ranks.iter() {
            if m != el {
                comm.add_flag(m, flag::SC_DONE, 1);
            }
        }
    } else {
        // Plain member: my slice arrives in slot `delivery` (slot 0 when it
        // comes straight from the root, slot 1 when forwarded by a leader).
        let from_root = my_set == root_set;
        comm.epochs.scatter_arrived += 1;
        comm.wait_flag(flag::SC_ARRIVE, comm.epochs.scatter_arrived);
        let off = if from_root { 0 } else { gs };
        let mut bytes = comm.take_stage(len * T::SIZE);
        comm.read_my_gather(off, &mut bytes);
        bytes_to_slice(&bytes, out);
        comm.restore_stage(bytes);
        comm.add_flag(root, flag::SC_ACK, 1);
        comm.epochs.scatter_released += 1;
        comm.wait_flag(flag::SC_DONE, comm.epochs.scatter_released);
    }
}
