//! `CAF_CHECK_SEED` replay: the env var must narrow the sweep to exactly
//! one chaos run with that seed. Kept alone in this file — integration
//! test files run as separate processes, so mutating the process
//! environment here cannot race any other test.

use caf_check::{check_program, conformance, CheckOptions, Program, Scenario};
use caf_collectives::CollectiveConfig;
use std::sync::Arc;

#[test]
fn caf_check_seed_env_replays_exactly_one_seed() {
    std::env::set_var("CAF_CHECK_SEED", "424242");
    let prog: Program = Arc::new(conformance);
    let report = check_program(
        &Scenario::tiny(),
        "two_level",
        CollectiveConfig::two_level(),
        &prog,
        &CheckOptions {
            seeds: (0..50).collect(), // must be ignored under replay
            faults: false,
            threads: false,
            trace_window: 2,
        },
    )
    .unwrap_or_else(|f| panic!("replay run must pass:\n{}", f.render()));
    std::env::remove_var("CAF_CHECK_SEED");
    assert_eq!(
        report.chaos_runs, 1,
        "CAF_CHECK_SEED must replace the seed list with the single replay seed"
    );
}
