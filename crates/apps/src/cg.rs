//! Distributed conjugate gradient for the 2-D 5-point Laplacian.
//!
//! The grid is `n × n` unknowns, partitioned by contiguous **block rows**
//! across images. A matrix-vector product needs each image's first and
//! last grid row in its neighbors' halos (one-sided puts + `sync images`
//! with the two neighbors only), and each CG iteration performs three
//! global dot products (`co_sum` on a single f64 — the latency-bound
//! allreduce the paper's two-level reduction targets).

use caf_runtime::{Coarray, ImageCtx};

/// Problem configuration.
#[derive(Clone, Copy, Debug)]
pub struct CgConfig {
    /// Grid side: the system has `n × n` unknowns.
    pub n: usize,
    /// Convergence threshold on ‖r‖₂ / ‖b‖₂.
    pub rtol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

/// Per-image result.
#[derive(Clone, Debug)]
pub struct CgOutcome {
    /// Iterations executed.
    pub iters: usize,
    /// Final relative residual ‖r‖₂ / ‖b‖₂.
    pub rel_residual: f64,
    /// Nanoseconds between the solve's start/end barriers.
    pub time_ns: u64,
    /// My slice of the solution (grid rows `row0..row0+rows`, row-major).
    pub x_local: Vec<f64>,
    /// First grid row owned by this image.
    pub row0: usize,
}

/// Contiguous block-row partition of `n` grid rows over `p` images:
/// image `i` (0-based) owns rows `[start(i), start(i+1))`.
fn row_range(n: usize, p: usize, i: usize) -> (usize, usize) {
    let base = n / p;
    let extra = n % p;
    let start = i * base + i.min(extra);
    let len = base + usize::from(i < extra);
    (start, start + len)
}

/// `y = A·x` for the 5-point Laplacian (4 on the diagonal, −1 for the four
/// neighbors, Dirichlet zero boundary), on my block of rows. `x` carries
/// two halo rows: `x[0..n]` = row above my block, `x[n..]` = my rows, last
/// `n` = row below.
fn laplacian_matvec(n: usize, rows: usize, x_halo: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x_halo.len(), (rows + 2) * n);
    debug_assert_eq!(y.len(), rows * n);
    for r in 0..rows {
        let me = &x_halo[(r + 1) * n..(r + 2) * n];
        let up = &x_halo[r * n..(r + 1) * n];
        let dn = &x_halo[(r + 2) * n..(r + 3) * n];
        let out = &mut y[r * n..(r + 1) * n];
        for c in 0..n {
            let mut v = 4.0 * me[c];
            if c > 0 {
                v -= me[c - 1];
            }
            if c + 1 < n {
                v -= me[c + 1];
            }
            v -= up[c] + dn[c];
            out[c] = v;
        }
    }
}

/// Solve `A·x = b` with b ≡ 1, returning when ‖r‖/‖b‖ ≤ rtol. Collective
/// over the current team.
pub fn cg_solve(img: &mut ImageCtx, cfg: &CgConfig) -> CgOutcome {
    let n = cfg.n;
    let p = img.num_images();
    let me0 = img.this_image() - 1;
    let (row0, row1) = row_range(n, p, me0);
    let rows = row1 - row0;
    assert!(rows > 0, "more images than grid rows ({p} > {n})");
    let len = rows * n;

    // Halo coarray: slot 0 = "row pushed up to me from below"?? Layout:
    // [0..n) = halo from the image above (their last row),
    // [n..2n) = halo from the image below (their first row).
    let halo: Coarray<f64> = img.coarray(2 * n);
    let flops_per_mv = (9 * len) as u64;

    let dot = |img: &mut ImageCtx, a: &[f64], b: &[f64]| -> f64 {
        let local: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        img.compute(img.fabric().cost().flops_to_ns(2 * len as u64));
        let mut v = [local];
        img.co_sum(&mut v);
        v[0]
    };

    // State: x = 0, r = b = 1, p_dir = r.
    let mut x = vec![0.0f64; len];
    let mut r = vec![1.0f64; len];
    let mut p_dir = r.clone();
    let mut halo_buf = vec![0.0f64; (rows + 2) * n];
    let mut ap = vec![0.0f64; len];

    img.sync_all();
    let t0 = img.now_ns();

    let bnorm2 = dot(img, &r, &r); // ‖b‖² = n²
    let mut rr = bnorm2;
    let mut iters = 0;

    while iters < cfg.max_iters && (rr / bnorm2).sqrt() > cfg.rtol {
        // Halo exchange of p_dir's boundary rows with up/down neighbors.
        let mut partners = Vec::new();
        if me0 > 0 {
            halo.put(me0, n, &p_dir[0..n]); // my first row -> above's "below" slot
            partners.push(me0); // 1-based index of the image above
        }
        if me0 + 1 < p {
            halo.put(me0 + 2, 0, &p_dir[len - n..len]); // my last row -> below's "above" slot
            partners.push(me0 + 2);
        }
        img.sync_images(&partners);
        halo_buf[..n].fill(0.0);
        halo_buf[(rows + 1) * n..].fill(0.0);
        if me0 > 0 {
            halo.get(me0 + 1, 0, &mut halo_buf[..n]);
        }
        if me0 + 1 < p {
            let (lo, hi) = ((rows + 1) * n, (rows + 2) * n);
            halo.get(me0 + 1, n, &mut halo_buf[lo..hi]);
        }
        halo_buf[n..(rows + 1) * n].copy_from_slice(&p_dir);

        laplacian_matvec(n, rows, &halo_buf, &mut ap);
        img.compute(img.fabric().cost().flops_to_ns(flops_per_mv));

        let pap = dot(img, &p_dir, &ap);
        let alpha = rr / pap;
        for i in 0..len {
            x[i] += alpha * p_dir[i];
            r[i] -= alpha * ap[i];
        }
        img.compute(img.fabric().cost().flops_to_ns(4 * len as u64));

        let rr_new = dot(img, &r, &r);
        let beta = rr_new / rr;
        for i in 0..len {
            p_dir[i] = r[i] + beta * p_dir[i];
        }
        img.compute(img.fabric().cost().flops_to_ns(2 * len as u64));
        rr = rr_new;
        iters += 1;

        // The halo slots are reused next iteration; the neighbors have
        // consumed them (their matvec is done) once they reach this
        // point — enforced by the second sync of the next exchange…
        // conservatively, a cheap pairwise fence here:
        img.sync_images(&partners);
    }

    img.sync_all();
    CgOutcome {
        iters,
        rel_residual: (rr / bnorm2).sqrt(),
        time_ns: img.now_ns() - t0,
        x_local: x,
        row0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_runtime::{run, CollectiveConfig, RunConfig};
    use caf_topology::presets;

    #[test]
    fn row_ranges_partition_exactly() {
        for n in [5usize, 16, 33] {
            for p in 1..=6 {
                if p > n {
                    continue;
                }
                let mut covered = 0;
                for i in 0..p {
                    let (a, b) = row_range(n, p, i);
                    assert_eq!(a, covered, "gap at image {i}");
                    assert!(b > a);
                    covered = b;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn serial_matvec_matches_dense_laplacian() {
        let n = 4;
        // Whole domain on one "image": halo rows are zero.
        let x: Vec<f64> = (0..n * n).map(|i| (i as f64) * 0.1 - 0.3).collect();
        let mut halo = vec![0.0; (n + 2) * n];
        halo[n..(n + 1) * n].copy_from_slice(&x);
        let mut y = vec![0.0; n * n];
        laplacian_matvec(n, n, &halo, &mut y);
        // Dense reference.
        for r in 0..n {
            for c in 0..n {
                let mut v = 4.0 * x[r * n + c];
                if c > 0 {
                    v -= x[r * n + c - 1];
                }
                if c + 1 < n {
                    v -= x[r * n + c + 1];
                }
                if r > 0 {
                    v -= x[(r - 1) * n + c];
                }
                if r + 1 < n {
                    v -= x[(r + 1) * n + c];
                }
                assert!((y[r * n + c] - v).abs() < 1e-13);
            }
        }
    }

    fn converges(images: usize, nodes: usize, cores: usize, n: usize, cfgc: CollectiveConfig) {
        let rc = RunConfig::sim_packed(presets::mini(nodes, cores), images).with_collectives(cfgc);
        let cfg = CgConfig {
            n,
            rtol: 1e-8,
            max_iters: 500,
        };
        let out = run(rc, move |img| {
            let o = cg_solve(img, &cfg);
            (o.iters, o.rel_residual, o.x_local, o.row0)
        });
        let (iters0, res0, ..) = out[0];
        assert!(res0 <= 1e-8, "did not converge: {res0}");
        assert!(iters0 > 0 && iters0 < 500);
        for (iters, res, ..) in &out {
            assert_eq!(*iters, iters0, "images disagree on iteration count");
            assert!((res - res0).abs() < 1e-12);
        }
        // Verify A·x = 1 on the assembled solution.
        let mut full = vec![0.0f64; n * n];
        for (_, _, xs, row0) in &out {
            full[row0 * n..row0 * n + xs.len()].copy_from_slice(xs);
        }
        let mut halo = vec![0.0; (n + 2) * n];
        halo[n..(n + 1) * n].copy_from_slice(&full);
        let mut y = vec![0.0; n * n];
        laplacian_matvec(n, n, &halo, &mut y);
        for v in y {
            assert!((v - 1.0).abs() < 1e-6, "A x should be 1, got {v}");
        }
    }

    #[test]
    fn cg_single_image() {
        converges(1, 1, 1, 8, CollectiveConfig::auto());
    }

    #[test]
    fn cg_four_images_two_nodes() {
        converges(4, 2, 2, 12, CollectiveConfig::auto());
    }

    #[test]
    fn cg_uneven_rows() {
        // 13 rows over 4 images: 4/3/3/3.
        converges(4, 2, 2, 13, CollectiveConfig::auto());
    }

    #[test]
    fn cg_one_level_and_two_level_agree() {
        converges(6, 2, 3, 12, CollectiveConfig::one_level());
        converges(6, 2, 3, 12, CollectiveConfig::two_level());
    }

    #[test]
    fn cg_on_threads() {
        let rc = RunConfig::threads_packed(presets::mini(2, 2), 4);
        let cfg = CgConfig {
            n: 10,
            rtol: 1e-8,
            max_iters: 300,
        };
        let out = run(rc, move |img| cg_solve(img, &cfg).rel_residual);
        assert!(out.iter().all(|r| *r <= 1e-8));
    }
}
