//! EXP-S1-simscale — simulator throughput at fleet scale: the sharded
//! event core + indexed O(log n) scheduler vs the pre-scale global heap +
//! O(n) argmin scans, driven through the hosted-image stepper
//! ([`caf_fabric::run_stepped`]) so fleet sizes are bounded by memory, not
//! OS threads.
//!
//! Three synchronization kernels (dissemination barrier, binomial
//! broadcast, binomial reduce) run at 1k/10k (quick) and up to 1M images
//! (full). Each point reports the *deterministic* simulated makespan
//! (`sharded_virt` rows — bit-for-bit reproducible, gated at the default
//! 10% by `cargo xtask bench-diff`) and the wall-clock cost per simulated
//! op (`*_wall` rows — host-noisy, gated loosely via `--wall-tolerance`).
//! At 10k images the legacy core (`SimConfig::legacy_queue`, the pre-PR
//! scheduler) runs the same kernels as the speedup reference, and its
//! virtual makespans are asserted bit-identical to the sharded core's.
//!
//! Results go to `BENCH_simscale.json` (override with `CAF_BENCH_OUT`);
//! CI reruns the quick points and diffs against the committed baseline.

use caf_bench::{print_cost_preamble, quick_mode};
use caf_fabric::stepper::kernels::{BinomialBroadcast, BinomialReduce, DisseminationBarrier};
use caf_fabric::{run_stepped, ChaosConfig, SimConfig, SimFabric, StepOp, StepProgram};
use caf_microbench::Table;
use caf_topology::{presets, ImageMap, Placement, SoftwareOverheads};
use std::sync::Arc;
use std::time::Instant;

struct Rec {
    op: &'static str,
    bytes: usize, // image count, in the diff key's "bytes" slot
    algo: &'static str,
    ns: f64,
}

/// One hosted image running one of the three kernels.
enum Kern {
    Barrier(DisseminationBarrier),
    Bcast(BinomialBroadcast),
    Reduce(BinomialReduce),
}

impl StepProgram for Kern {
    fn next(&mut self) -> StepOp {
        match self {
            Kern::Barrier(p) => p.next(),
            Kern::Bcast(p) => p.next(),
            Kern::Reduce(p) => p.next(),
        }
    }
}

const KERNELS: [&str; 3] = ["barrier", "broadcast", "reduce"];

fn programs(kernel: &str, n: usize, epochs: u64) -> Vec<Kern> {
    (0..n)
        .map(|me| match kernel {
            "barrier" => Kern::Barrier(DisseminationBarrier::new(me, n, epochs)),
            "broadcast" => Kern::Bcast(BinomialBroadcast::new(me, n, epochs)),
            "reduce" => Kern::Reduce(BinomialReduce::new(me, n, epochs)),
            other => unreachable!("unknown kernel {other}"),
        })
        .collect()
}

/// A synthetic fat cluster: 512 images per node, as many nodes as the
/// fleet needs. Capped bootstrap slots keep the segment footprint linear
/// in the fleet (the kernels touch only the first few slots).
fn fabric(n: usize, legacy: bool, chaos_seed: Option<u64>) -> Arc<SimFabric> {
    let per_node = 512usize;
    let nodes = n.div_ceil(per_node).max(2);
    let map = ImageMap::new(
        presets::mini(nodes, per_node),
        n,
        &Placement::Block { per_node },
    );
    SimFabric::new(
        map,
        SimConfig {
            cost: presets::whale_cost(),
            overheads: SoftwareOverheads::NONE,
            chaos: chaos_seed.map(ChaosConfig::from_seed),
            legacy_queue: legacy,
            bootstrap_slots: Some(4),
            ..SimConfig::default()
        },
    )
}

struct Point {
    virt_ns: u64,
    total_ops: u64,
    wall_s: f64,
    ops_per_s: f64,
}

fn run_point(kernel: &str, n: usize, legacy: bool, chaos_seed: Option<u64>) -> Point {
    let epochs = if n >= 100_000 { 1 } else { 2 };
    let f = fabric(n, legacy, chaos_seed);
    let progs = programs(kernel, n, epochs);
    let t0 = Instant::now();
    let report = run_stepped(&f, progs);
    let wall_s = t0.elapsed().as_secs_f64();
    Point {
        virt_ns: report.max_time_ns,
        total_ops: report.total_ops(),
        wall_s,
        ops_per_s: report.total_ops() as f64 / wall_s.max(1e-9),
    }
}

fn human(n: usize) -> String {
    if n >= 1_000_000 {
        format!("{}M", n / 1_000_000)
    } else {
        format!("{}k", n / 1_000)
    }
}

fn json_escape_free(s: &str) -> &str {
    // All strings we emit are identifiers; keep the writer honest anyway.
    assert!(
        s.chars()
            .all(|c| c.is_ascii_alphanumeric() || "_-.".contains(c)),
        "unexpected character in JSON field: {s}"
    );
    s
}

fn write_json(path: &str, recs: &[Rec]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"exp_s1_simscale\",\n");
    out.push_str("  \"machine\": \"synthetic-512-per-node\",\n");
    out.push_str("  \"per_node\": 512,\n");
    out.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    out.push_str("  \"unit\": \"virt_rows_modeled_makespan_ns_wall_rows_wall_ns_per_op\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in recs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"bytes\": {}, \"algo\": \"{}\", \"ns\": {:.3}}}{}\n",
            json_escape_free(r.op),
            r.bytes,
            json_escape_free(r.algo),
            r.ns,
            if i + 1 < recs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path} ({} results)", recs.len());
}

fn main() {
    print_cost_preamble("EXP-S1-simscale");
    let scales: Vec<usize> = if quick_mode() {
        vec![1_000, 10_000]
    } else {
        vec![1_000, 10_000, 100_000, 1_000_000]
    };
    let mut recs: Vec<Rec> = Vec::new();
    let mut t = Table::new(
        "EXP-S1-simscale: hosted-image stepping, sharded event core (legacy \
         reference at 10k images)"
            .to_string(),
        &[
            "kernel",
            "images",
            "sim ops",
            "virt ms",
            "wall s",
            "Mops/s",
            "legacy Mops/s",
            "speedup",
        ],
    );
    let mut min_speedup_10k = f64::INFINITY;
    for &n in &scales {
        for kernel in KERNELS {
            let p = run_point(kernel, n, false, None);
            recs.push(Rec {
                op: kernel,
                bytes: n,
                algo: "sharded_virt",
                ns: p.virt_ns as f64,
            });
            recs.push(Rec {
                op: kernel,
                bytes: n,
                algo: "sharded_wall",
                ns: p.wall_s * 1e9 / p.total_ops as f64,
            });
            // The pre-PR core is only affordable (and only interesting) at
            // the 10k reference point: O(n) argmin scans per commit.
            let legacy = (n == 10_000).then(|| run_point(kernel, n, true, None));
            let (legacy_col, speedup_col) = match &legacy {
                Some(l) => {
                    assert_eq!(
                        l.virt_ns, p.virt_ns,
                        "{kernel}@{n}: legacy and sharded cores disagree on the simulated makespan"
                    );
                    recs.push(Rec {
                        op: kernel,
                        bytes: n,
                        algo: "legacy_wall",
                        ns: l.wall_s * 1e9 / l.total_ops as f64,
                    });
                    let speedup = p.ops_per_s / l.ops_per_s;
                    min_speedup_10k = min_speedup_10k.min(speedup);
                    (
                        format!("{:.2}", l.ops_per_s / 1e6),
                        format!("{speedup:.1}x"),
                    )
                }
                None => ("-".into(), "-".into()),
            };
            t.row(&[
                kernel.to_string(),
                human(n),
                p.total_ops.to_string(),
                format!("{:.2}", p.virt_ns as f64 / 1e6),
                format!("{:.2}", p.wall_s),
                format!("{:.2}", p.ops_per_s / 1e6),
                legacy_col,
                speedup_col,
            ]);
        }
    }
    // Chaos smoke: the perturbed scheduler through the stepped driver is
    // part of the tracked surface too (deterministic per seed, so the
    // makespan is gateable like any virt row).
    let chaos = run_point("barrier", 1_000, false, Some(42));
    recs.push(Rec {
        op: "barrier",
        bytes: 1_000,
        algo: "sharded_chaos_virt",
        ns: chaos.virt_ns as f64,
    });
    t.note(format!(
        "chaos seed 42, barrier @1k: virt {:.2} ms, {:.2} Mops/s",
        chaos.virt_ns as f64 / 1e6,
        chaos.ops_per_s / 1e6
    ));
    t.print();

    let path = std::env::var("CAF_BENCH_OUT").unwrap_or_else(|_| {
        let root = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
        format!("{root}/../../BENCH_simscale.json")
    });
    write_json(&path, &recs);

    if !quick_mode() {
        assert!(
            min_speedup_10k >= 5.0,
            "sharded core throughput speedup {min_speedup_10k:.2}x at 10k images \
             misses the 5x target over the pre-PR core"
        );
        println!(
            "acceptance: 100k/1M points completed, sharded >={min_speedup_10k:.1}x \
             legacy ops/sec at 10k images -- PASS"
        );
    }
}
