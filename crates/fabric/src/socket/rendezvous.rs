//! Fleet rendezvous: how N freshly spawned processes find each other.
//!
//! The launcher binds one *coordinator* listener and passes its address to
//! every child. Each child dials it, sends [`Frame::Hello`] with its own
//! data-plane listen address, and blocks until the coordinator has heard
//! from the whole fleet and replies with [`Frame::Peers`] — the full
//! rank-ordered address list. After that the coordinator connection stays
//! open as a control channel: children report per-image results with
//! [`Frame::Done`], and the coordinator can push [`Frame::Abort`].

use super::wire::{read_frame, write_frame, Addr, Frame, Stream, WIRE_MAGIC};
use std::io::{self, BufReader};
use std::time::{Duration, Instant};

/// A fleet member's client end of the coordinator connection.
#[derive(Debug)]
pub struct CoordClient {
    reader: BufReader<Stream>,
    writer: Stream,
    /// This member's process rank.
    pub node: u32,
}

impl CoordClient {
    /// Dial the coordinator (retrying with capped exponential backoff up to
    /// `deadline`), announce `listen_addr`, and wait for the peer list.
    pub fn join(
        coord: &Addr,
        node: u32,
        listen_addr: &Addr,
        deadline: Duration,
    ) -> io::Result<(CoordClient, Vec<Addr>)> {
        let t0 = Instant::now();
        let mut backoff = Duration::from_millis(10);
        let stream = loop {
            match Stream::connect(coord) {
                Ok(s) => break s,
                Err(e) => {
                    if t0.elapsed() >= deadline {
                        return Err(io::Error::new(
                            e.kind(),
                            format!("node {node}: coordinator {coord} unreachable: {e}"),
                        ));
                    }
                    std::thread::sleep(backoff.min(deadline - t0.elapsed()));
                    backoff = (backoff * 2).min(Duration::from_millis(500));
                }
            }
        };
        stream.set_read_timeout(Some(deadline))?;
        stream.set_write_timeout(Some(deadline))?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        write_frame(
            &mut writer,
            &Frame::Hello {
                node,
                addr: listen_addr.to_string(),
                magic: WIRE_MAGIC,
            },
        )?;
        let (frame, _) = read_frame(&mut reader)?;
        let addrs = match frame {
            Frame::Peers { addrs } => addrs
                .iter()
                .map(|s| {
                    s.parse().map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("bad peer addr: {e}"))
                    })
                })
                .collect::<io::Result<Vec<Addr>>>()?,
            Frame::Abort { msg } => return Err(io::Error::other(format!("fleet aborted: {msg}"))),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected Peers from coordinator, got {other:?}"),
                ))
            }
        };
        Ok((
            CoordClient {
                reader,
                writer,
                node,
            },
            addrs,
        ))
    }

    /// Report this member's final per-image results to the launcher.
    pub fn send_done(&mut self, results: &[(u32, u64)]) -> io::Result<()> {
        write_frame(
            &mut self.writer,
            &Frame::Done {
                node: self.node,
                results: results.to_vec(),
            },
        )?;
        Ok(())
    }

    /// Ship an encoded [`NodeTelemetry`](super::obs::NodeTelemetry) blob to
    /// the coordinator (live metrics, the final snapshot, or a flight
    /// recorder on the way down).
    pub fn send_telemetry(&mut self, payload: Vec<u8>) -> io::Result<()> {
        write_frame(
            &mut self.writer,
            &Frame::Telemetry {
                node: self.node,
                payload,
            },
        )?;
        Ok(())
    }

    /// Block (up to the stream's read timeout) for one control frame from
    /// the coordinator — used by launch modes that hold children open.
    pub fn recv(&mut self) -> io::Result<Frame> {
        read_frame(&mut self.reader).map(|(f, _)| f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socket::wire::{Listener, Transport};

    /// A minimal in-process coordinator (the real one lives in caf-launch):
    /// accept `n` Hellos, broadcast Peers.
    fn mini_coordinator(n: usize) -> (Addr, std::thread::JoinHandle<()>) {
        let listener = Listener::bind(Transport::Uds).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut conns = Vec::new();
            let mut addrs = vec![String::new(); n];
            for _ in 0..n {
                let s = listener.accept().unwrap();
                let mut r = BufReader::new(s.try_clone().unwrap());
                let (f, _) = read_frame(&mut r).unwrap();
                match f {
                    Frame::Hello { node, addr, magic } => {
                        assert_eq!(magic, WIRE_MAGIC);
                        addrs[node as usize] = addr;
                        conns.push(s);
                    }
                    other => panic!("expected Hello, got {other:?}"),
                }
            }
            for mut s in conns {
                write_frame(
                    &mut s,
                    &Frame::Peers {
                        addrs: addrs.clone(),
                    },
                )
                .unwrap();
            }
        });
        (addr, handle)
    }

    #[test]
    fn three_members_rendezvous() {
        let n = 3;
        let (coord, coord_thread) = mini_coordinator(n);
        let handles: Vec<_> = (0..n as u32)
            .map(|rank| {
                let coord = coord.clone();
                std::thread::spawn(move || {
                    let me = Addr::Uds(format!("/tmp/fake-{rank}.sock").into());
                    let (_client, peers) =
                        CoordClient::join(&coord, rank, &me, Duration::from_secs(5)).unwrap();
                    peers
                })
            })
            .collect();
        for h in handles {
            let peers = h.join().unwrap();
            assert_eq!(peers.len(), n);
            for (i, p) in peers.iter().enumerate() {
                assert_eq!(*p, Addr::Uds(format!("/tmp/fake-{i}.sock").into()));
            }
        }
        coord_thread.join().unwrap();
    }

    #[test]
    fn join_retries_until_coordinator_appears() {
        // Bind lazily after a delay: the client's backoff loop should ride
        // through the initial connection refusals.
        let path = std::env::temp_dir().join(format!("caf-rdv-late-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let coord = Addr::Uds(path.clone());
        let coord2 = coord.clone();
        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            let l = std::os::unix::net::UnixListener::bind(&path).unwrap();
            let (s, _) = l.accept().unwrap();
            let s = Stream::Uds(s);
            let mut r = BufReader::new(s.try_clone().unwrap());
            let (f, _) = read_frame(&mut r).unwrap();
            assert!(matches!(f, Frame::Hello { node: 0, .. }));
            let mut w = s;
            write_frame(
                &mut w,
                &Frame::Peers {
                    addrs: vec!["uds:/tmp/only.sock".into()],
                },
            )
            .unwrap();
            std::fs::remove_file(&path).ok();
        });
        let me = Addr::Uds("/tmp/only.sock".into());
        let (_c, peers) = CoordClient::join(&coord2, 0, &me, Duration::from_secs(5)).unwrap();
        assert_eq!(peers.len(), 1);
        server.join().unwrap();
    }

    #[test]
    fn join_times_out_without_coordinator() {
        let coord = Addr::Uds("/tmp/caf-rdv-nonexistent.sock".into());
        let me = Addr::Uds("/tmp/whatever.sock".into());
        let err = CoordClient::join(&coord, 0, &me, Duration::from_millis(100)).unwrap_err();
        assert!(err.to_string().contains("unreachable"));
    }
}
