//! Merging per-process telemetry into one fleet timeline.
//!
//! # Clock alignment
//!
//! Every process stamps its events and telemetry with *its own* monotonic
//! clock (ns since its fabric started). The coordinator cannot read those
//! clocks directly, but every telemetry frame gives it one inequality:
//!
//! ```text
//! recv_coord ≥ sent_child + offset      (one-way delay is nonnegative)
//! ```
//!
//! so `recv_coord − sent_at_ns` is an upper bound on the child→coordinator
//! clock offset, tight to within the one-way delay of the *fastest*
//! shipment. The supervisor takes the minimum of that difference over
//! every frame a node sends (live updates tighten it for free) and stores
//! it as [`NodeFeed::offset_ns`]. Merged event time is then
//! `t_ns + offset_ns`, putting every process on the coordinator's axis —
//! good to well under a millisecond on one machine, which is enough to
//! read cross-process causality (a put span on node 0 ending before its
//! flag delivery on node 1) in one Perfetto view.

use caf_fabric::NodeTelemetry;
use caf_trace::{chrome_trace_json, summary_rows, Event};
use std::collections::HashMap;

/// One node's telemetry plus its clock offset onto the reference
/// (coordinator) clock.
#[derive(Clone, Debug)]
pub struct NodeFeed {
    /// The node's shipped telemetry (latest and most complete shipment).
    pub telemetry: NodeTelemetry,
    /// Add this to the node's timestamps to land on the reference clock.
    /// `min` over shipments of (coordinator receive instant − `sent_at_ns`).
    pub offset_ns: i64,
}

impl NodeFeed {
    /// Shift one of this node's timestamps onto the reference clock
    /// (saturating at 0 — alignment slack never produces negative time).
    pub fn align(&self, t_ns: u64) -> u64 {
        (t_ns as i64).saturating_add(self.offset_ns).max(0) as u64
    }
}

/// All events of the fleet on the reference clock, sorted by start time.
pub fn merged_events(feeds: &[NodeFeed]) -> Vec<Event> {
    let mut out: Vec<Event> =
        Vec::with_capacity(feeds.iter().map(|f| f.telemetry.events.len()).sum());
    for feed in feeds {
        for ev in &feed.telemetry.events {
            let mut ev = *ev;
            ev.t_ns = feed.align(ev.t_ns);
            out.push(ev);
        }
    }
    out.sort_by_key(|e| e.t_ns);
    out
}

/// Map each global image rank to the node that shipped it, from the
/// telemetry's own image lists (images no feed claims map to node 0).
pub fn node_of_map(feeds: &[NodeFeed]) -> HashMap<usize, usize> {
    let mut map = HashMap::new();
    for feed in feeds {
        for img in &feed.telemetry.images {
            map.insert(*img as usize, feed.telemetry.node as usize);
        }
    }
    map
}

/// One Chrome/Perfetto JSON document for the whole fleet: every process's
/// events on the aligned clock, tracks grouped per node (`pid` = node,
/// `tid` = image).
pub fn merged_chrome_json(feeds: &[NodeFeed]) -> String {
    let events = merged_events(feeds);
    let nodes = node_of_map(feeds);
    chrome_trace_json(&events, |img| nodes.get(&img).copied().unwrap_or(0))
}

/// Fleet-wide per-(team, op, level) percentile table over the merged
/// events: `(headers, rows)` strings, same shape as the in-process
/// `caf_trace::summary_rows`.
pub fn fleet_summary(feeds: &[NodeFeed]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    summary_rows(&merged_events(feeds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_fabric::{ObsSnapshot, StatsSnapshot, TelemetryPhase};
    use caf_trace::chrome::json;
    use caf_trace::EventKind;

    fn feed(node: u32, images: &[u32], offset_ns: i64, events: Vec<Event>) -> NodeFeed {
        NodeFeed {
            telemetry: NodeTelemetry {
                node,
                phase: TelemetryPhase::Final,
                sent_at_ns: 0,
                cause: String::new(),
                images: images.to_vec(),
                stats: StatsSnapshot::default(),
                obs: ObsSnapshot::default(),
                events,
            },
            offset_ns,
        }
    }

    fn span_for(img: u32, t: u64, dur: u64) -> Event {
        let mut ev = Event::span(EventKind::Put, t, dur);
        ev.img = img;
        ev
    }

    #[test]
    fn merge_applies_offsets_and_sorts() {
        // Node 1's clock started 1000ns after the coordinator's: its raw
        // t=0 event really happened at reference t=1000.
        let feeds = vec![
            feed(0, &[0, 1], 0, vec![span_for(0, 500, 10)]),
            feed(1, &[2, 3], 1000, vec![span_for(2, 0, 10)]),
        ];
        let merged = merged_events(&feeds);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].t_ns, 500, "node 0 event first");
        assert_eq!(merged[1].t_ns, 1000, "node 1 event shifted by offset");
        assert_eq!(merged[1].img, 2);
        // Negative offsets clamp at zero rather than wrapping.
        let back = feed(1, &[2], -500, vec![span_for(2, 100, 1)]);
        assert_eq!(merged_events(&[back])[0].t_ns, 0);
    }

    #[test]
    fn merged_chrome_json_spans_processes_with_node_pids() {
        let feeds = vec![
            feed(0, &[0, 1], 0, vec![span_for(0, 100, 50)]),
            feed(1, &[2, 3], 2000, vec![span_for(3, 100, 50)]),
        ];
        let doc = merged_chrome_json(&feeds);
        let parsed = json::parse(&doc).expect("valid JSON");
        let arr = parsed.as_arr().expect("array");
        let spans: Vec<_> = arr
            .iter()
            .filter(|v| v.get("ph").and_then(json::Value::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        let pid_of = |tid: f64| {
            spans
                .iter()
                .find(|s| s.get("tid").and_then(json::Value::as_f64) == Some(tid))
                .and_then(|s| s.get("pid").and_then(json::Value::as_f64))
                .unwrap()
        };
        assert_eq!(pid_of(0.0), 0.0, "image 0 on node 0's track");
        assert_eq!(pid_of(3.0), 1.0, "image 3 on node 1's track");
        // Node 1's event landed at reference time 2100ns = 2.1us.
        let ts = spans
            .iter()
            .find(|s| s.get("tid").and_then(json::Value::as_f64) == Some(3.0))
            .and_then(|s| s.get("ts").and_then(json::Value::as_f64))
            .unwrap();
        assert!((ts - 2.1).abs() < 1e-9, "aligned ts, got {ts}");
    }

    #[test]
    fn fleet_summary_aggregates_across_nodes() {
        let feeds = vec![
            feed(0, &[0], 0, vec![span_for(0, 0, 100)]),
            feed(1, &[1], 0, vec![span_for(1, 0, 300)]),
        ];
        let (headers, rows) = fleet_summary(&feeds);
        assert_eq!(headers[1], "op");
        let put = rows.iter().find(|r| r[1] == "put").expect("put row");
        assert_eq!(put[3], "2", "both nodes' puts in one row");
    }
}
