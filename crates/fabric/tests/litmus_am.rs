//! Litmus tests for the active-message tier: the small programs whose
//! orderings the batching layer must get right — AM traffic interleaved
//! with direct nonblocking puts stays in per-destination program order,
//! `quiet` means remote completion of every batched AM, and a fused
//! put+flag publishes its payload before the flag trips. Each is pinned
//! on the simulator and real threads, then ported to multi-process
//! `SocketFabric` fleets where the wire ack protocol (one `AmBatch`
//! frame, one ack) is what must uphold the same contracts.

use caf_fabric::socket::testing::{fleet, fleet_with, run_fleet};
use caf_fabric::{
    bootstrap, Am, AmPolicy, Fabric, SimConfig, SimFabric, SocketConfig, ThreadConfig, ThreadFabric,
};
use caf_fabric::{run_spmd, FlagId};
use caf_topology::{presets, ImageMap, Placement, ProcId, SoftwareOverheads};
use std::sync::Arc;
use std::time::Duration;

const SPARE_FLAG: FlagId = FlagId(2);
const BSEG: caf_fabric::SegmentId = bootstrap::SEG;

/// A policy wide enough that nothing flushes until asked: every litmus
/// below wants the ops to actually sit in the buffer.
fn wide() -> AmPolicy {
    AmPolicy {
        batch_bytes: 1 << 20,
        batch_ops: 64,
        flush_age_ns: u64::MAX / 2,
    }
}

fn sim(nodes: usize, cores: usize, images: usize) -> Arc<SimFabric> {
    let map = ImageMap::new(presets::mini(nodes, cores), images, &Placement::Packed);
    SimFabric::new(
        map,
        SimConfig {
            cost: presets::whale_cost(),
            overheads: SoftwareOverheads::NONE,
            ..SimConfig::default()
        },
    )
}

/// AM then `put_nb` then AM to the same destination: the buffered AM must
/// be flushed *before* the direct nonblocking put injects (slot A: the nb
/// payload is the later write and must win), and an AM buffered *after*
/// it must land later still (slot B: the AM payload wins). One ordering
/// violation in either direction flips a final value.
fn am_putnb_am_program(fabric: caf_fabric::ArcFabric) {
    let f2 = fabric.clone();
    run_spmd(fabric, move |me| {
        if me == ProcId(0) {
            let mut am = Am::new(f2.clone(), me, wide());
            // Slot A (offset 0): buffered AM first, nb put second.
            am.put(ProcId(1), BSEG, 0, &10u64.to_ne_bytes());
            let tok = am.put_nb(ProcId(1), BSEG, 0, &20u64.to_ne_bytes());
            // Slot B (offset 8): nb put already in flight, AM after.
            am.put(ProcId(1), BSEG, 8, &2u64.to_ne_bytes());
            f2.put_wait(me, tok);
            am.quiet();
            f2.flag_add(me, ProcId(1), SPARE_FLAG, 1);
        } else {
            f2.flag_wait_ge(me, SPARE_FLAG, 1);
            let mut out = [0u8; 8];
            f2.get(me, me, BSEG, 0, &mut out);
            assert_eq!(
                u64::from_ne_bytes(out),
                20,
                "slot A: the nb put follows the buffered AM in program \
                 order — its payload must win"
            );
            f2.get(me, me, BSEG, 8, &mut out);
            assert_eq!(
                u64::from_ne_bytes(out),
                2,
                "slot B: the AM buffered after the nb put must land later"
            );
        }
        f2.image_done(me);
    });
}

#[test]
fn am_then_put_nb_then_am_keeps_program_order() {
    am_putnb_am_program(sim(2, 1, 2));
    let map = ImageMap::new(presets::mini(2, 1), 2, &Placement::Packed);
    am_putnb_am_program(ThreadFabric::new(map, ThreadConfig::default()));
}

/// `quiet` = remote completion: several puts buffered into one batch, no
/// flags at all — after `am.quiet()` returns, every payload is already in
/// target memory, so a direct flag handshake started *after* the fence is
/// enough for the reader to see all of them.
fn quiet_completes_batched_ams_program(fabric: caf_fabric::ArcFabric) {
    let f2 = fabric.clone();
    run_spmd(fabric, move |me| {
        if me == ProcId(0) {
            let mut am = Am::new(f2.clone(), me, wide());
            for k in 0..4u64 {
                am.put(ProcId(1), BSEG, 8 * k as usize, &(100 + k).to_ne_bytes());
            }
            am.quiet();
            f2.flag_add(me, ProcId(1), SPARE_FLAG, 1);
        } else {
            f2.flag_wait_ge(me, SPARE_FLAG, 1);
            for k in 0..4u64 {
                let mut out = [0u8; 8];
                f2.get(me, me, BSEG, 8 * k as usize, &mut out);
                assert_eq!(u64::from_ne_bytes(out), 100 + k, "payload {k} lost");
            }
        }
        f2.image_done(me);
    });
}

#[test]
fn quiet_is_remote_completion_of_all_batched_ams() {
    let f = sim(2, 1, 2);
    quiet_completes_batched_ams_program(f.clone());
    let s = f.stats().snapshot();
    assert_eq!(s.ams_injected, 4);
    assert_eq!(
        s.am_batches_flushed, 1,
        "four buffered puts must coalesce into a single delivery"
    );
    let map = ImageMap::new(presets::mini(2, 1), 2, &Placement::Packed);
    quiet_completes_batched_ams_program(ThreadFabric::new(map, ThreadConfig::default()));
}

/// Flag visibility after a fused put+flag: a put directly followed by a
/// flag bump to the same destination fuses into one `PutFlag` wire op;
/// when the flag trips at the reader, the payload must already be there.
fn fused_put_flag_program(fabric: caf_fabric::ArcFabric) -> caf_fabric::StatsSnapshot {
    let f2 = fabric.clone();
    let stats = fabric.clone();
    run_spmd(fabric, move |me| {
        if me == ProcId(0) {
            let mut am = Am::new(f2.clone(), me, wide());
            am.put(ProcId(1), BSEG, 0, &99u64.to_ne_bytes());
            am.flag_add(ProcId(1), SPARE_FLAG, 1);
            am.flush();
            f2.quiet(me);
        } else {
            f2.flag_wait_ge(me, SPARE_FLAG, 1);
            let mut out = [0u8; 8];
            f2.get(me, me, BSEG, 0, &mut out);
            assert_eq!(
                u64::from_ne_bytes(out),
                99,
                "the fused payload must be visible when its flag trips"
            );
        }
        f2.image_done(me);
    });
    stats.stats().snapshot()
}

#[test]
fn fused_put_flag_payload_visible_when_flag_trips() {
    let s = fused_put_flag_program(sim(2, 1, 2));
    assert_eq!(s.ams_injected, 2);
    assert_eq!(s.am_fused, 1, "the put+flag pair must fuse");
    assert_eq!(s.am_batches_flushed, 1);
    let map = ImageMap::new(presets::mini(2, 1), 2, &Placement::Packed);
    let s = fused_put_flag_program(ThreadFabric::new(map, ThreadConfig::default()));
    assert_eq!(s.am_fused, 1);
}

// ---------------------------------------------------------------------------
// SocketFabric ports: initiator and target in separate fabric instances
// joined over real sockets. With the default config the pair's batches
// deliver through the shared-memory tier (ops applied in vector order
// against the peer's mapped segment); the mixed-trio port below runs the
// same contract against a shm pair and a wire pair (one `AmBatch` frame
// per flush, one ack cookie) in a single fleet.
// ---------------------------------------------------------------------------

fn socket_cfg() -> SocketConfig {
    SocketConfig {
        io_timeout: Duration::from_secs(10),
        flag_wait_timeout: Duration::from_secs(10),
        ..SocketConfig::default()
    }
}

fn socket_pair() -> Vec<Arc<caf_fabric::SocketFabric>> {
    let map = ImageMap::new(presets::mini(2, 1), 2, &Placement::Packed);
    fleet(&map, &socket_cfg())
}

/// Three processes, mixed transport: ranks 0 and 1 share segments, rank 2
/// is pure-wire — the same AM program then exercises both delivery paths.
fn mixed_trio() -> Vec<Arc<caf_fabric::SocketFabric>> {
    let map = ImageMap::new(presets::mini(3, 1), 3, &Placement::Packed);
    let shm = socket_cfg();
    let wire = SocketConfig {
        shm: false,
        ..socket_cfg()
    };
    fleet_with(&map, &[shm.clone(), shm, wire])
}

#[test]
fn mixed_fleet_am_orderings_hold_on_both_tiers() {
    // The am → put_nb → am interleave against the shared-memory peer and
    // the wire peer from one initiator: program order must hold on each
    // leg independently, whatever tier carries it.
    let fabrics = mixed_trio();
    let initiator = fabrics[0].clone();
    run_fleet(&fabrics, |f, me| {
        if me == ProcId(0) {
            for peer in [ProcId(1), ProcId(2)] {
                let mut am = Am::new(f.clone(), me, wide());
                am.put(peer, BSEG, 0, &10u64.to_ne_bytes());
                let tok = am.put_nb(peer, BSEG, 0, &20u64.to_ne_bytes());
                am.put(peer, BSEG, 8, &2u64.to_ne_bytes());
                f.put_wait(me, tok);
                am.quiet();
                f.flag_add(me, peer, SPARE_FLAG, 1);
            }
        } else {
            f.flag_wait_ge(me, SPARE_FLAG, 1);
            let mut out = [0u8; 8];
            f.get(me, me, BSEG, 0, &mut out);
            assert_eq!(
                u64::from_ne_bytes(out),
                20,
                "slot A on image {}: nb put must win",
                me.index() + 1
            );
            f.get(me, me, BSEG, 8, &mut out);
            assert_eq!(
                u64::from_ne_bytes(out),
                2,
                "slot B on image {}: later AM must win",
                me.index() + 1
            );
        }
        f.image_done(me);
    });
    let s = initiator.stats().snapshot();
    assert_eq!(s.ams_injected, 4, "two AMs per leg: {s:?}");
    // Proof the fleet was mixed: the wire leg shipped frames; the shm leg
    // (where the tier exists) landed its AM payloads without any.
    assert!(s.wire_frames_tx > 0, "wire leg must ship frames: {s:?}");
    if cfg!(unix) {
        assert!(s.shm_puts >= 2, "shm leg must land AM + nb puts: {s:?}");
    }
}

#[test]
fn socket_am_then_put_nb_then_am_keeps_program_order() {
    let fabrics = socket_pair();
    run_fleet(&fabrics, |f, me| {
        if me == ProcId(0) {
            let mut am = Am::new(f.clone(), me, wide());
            am.put(ProcId(1), BSEG, 0, &10u64.to_ne_bytes());
            let tok = am.put_nb(ProcId(1), BSEG, 0, &20u64.to_ne_bytes());
            am.put(ProcId(1), BSEG, 8, &2u64.to_ne_bytes());
            f.put_wait(me, tok);
            am.quiet();
            f.flag_add(me, ProcId(1), SPARE_FLAG, 1);
        } else {
            f.flag_wait_ge(me, SPARE_FLAG, 1);
            let mut out = [0u8; 8];
            f.get(me, me, BSEG, 0, &mut out);
            assert_eq!(u64::from_ne_bytes(out), 20, "slot A: nb put must win");
            f.get(me, me, BSEG, 8, &mut out);
            assert_eq!(u64::from_ne_bytes(out), 2, "slot B: later AM must win");
        }
        f.image_done(me);
    });
}

#[test]
fn socket_quiet_retires_the_batch_ack() {
    let fabrics = socket_pair();
    let initiator = fabrics[0].clone();
    run_fleet(&fabrics, |f, me| {
        if me == ProcId(0) {
            let mut am = Am::new(f.clone(), me, wide());
            for k in 0..4u64 {
                am.put(ProcId(1), BSEG, 8 * k as usize, &(100 + k).to_ne_bytes());
            }
            // quiet must block until the batch's ack cookie comes back —
            // i.e. until the target has applied all four payloads.
            am.quiet();
            f.flag_add(me, ProcId(1), SPARE_FLAG, 1);
        } else {
            f.flag_wait_ge(me, SPARE_FLAG, 1);
            for k in 0..4u64 {
                let mut out = [0u8; 8];
                f.get(me, me, BSEG, 8 * k as usize, &mut out);
                assert_eq!(u64::from_ne_bytes(out), 100 + k, "payload {k} lost");
            }
        }
        f.image_done(me);
    });
    let s = initiator.stats().snapshot();
    assert_eq!(s.ams_injected, 4);
    assert_eq!(s.am_batches_flushed, 1, "one AmBatch frame for four ops");
    assert_eq!(
        s.puts_nb_injected, 0,
        "batch acks must not masquerade as nonblocking puts"
    );
}

#[test]
fn socket_fused_put_flag_payload_visible_when_flag_trips() {
    let fabrics = socket_pair();
    let initiator = fabrics[0].clone();
    run_fleet(&fabrics, |f, me| {
        if me == ProcId(0) {
            let mut am = Am::new(f.clone(), me, wide());
            am.put(ProcId(1), BSEG, 0, &99u64.to_ne_bytes());
            am.flag_add(ProcId(1), SPARE_FLAG, 1);
            am.flush();
            f.quiet(me);
        } else {
            f.flag_wait_ge(me, SPARE_FLAG, 1);
            let mut out = [0u8; 8];
            f.get(me, me, BSEG, 0, &mut out);
            assert_eq!(
                u64::from_ne_bytes(out),
                99,
                "the fused payload must be visible when its flag trips"
            );
        }
        f.image_done(me);
    });
    let s = initiator.stats().snapshot();
    assert_eq!(s.am_fused, 1, "the put+flag pair must fuse on the wire too");
}

#[cfg(unix)]
#[test]
fn spilled_put_nb_before_shm_am_flag_keeps_point_to_point_order() {
    // The AM twin of the spilled-put_nb litmus in litmus_putnb.rs: a
    // put_nb into a window the owner spilled past the shared directory is
    // still in flight on the wire when an AM batch carrying a FlagAdd to
    // an in-table flag is delivered. Applied through shared memory, that
    // batch would publish the flag ahead of the payload; the fabric must
    // instead send it as a frame while nb debt to the peer is outstanding,
    // so it queues behind the put on the shared connection.
    use caf_fabric::socket::shm;
    use caf_fabric::AmOp;
    const ACK_FLAG: FlagId = FlagId(3); // bootstrap allocates NUM_FLAGS = 4
    let fabrics = socket_pair();
    run_fleet(&fabrics, move |f, me| {
        let mut spilled = None;
        for _ in 0..shm::MAX_SEGS {
            let s = f.alloc_segment(me, 64);
            if s.0 >= shm::MAX_SEGS {
                spilled = Some(s);
            }
        }
        let spilled = spilled.unwrap();
        bootstrap::control_barrier(&*f, me, &mut 0);
        let peer = ProcId(1 - me.index());
        if me == ProcId(0) {
            for k in 1..=2000u64 {
                // No put_wait, no quiet: the batched flag alone publishes.
                f.put_nb(me, peer, spilled, 0, &k.to_ne_bytes());
                f.am_deliver(
                    me,
                    peer,
                    &[AmOp::FlagAdd {
                        flag: SPARE_FLAG,
                        delta: 1,
                    }],
                );
                f.flag_wait_ge(me, ACK_FLAG, k);
            }
            f.quiet(me);
        } else {
            for k in 1..=2000u64 {
                f.flag_wait_ge(me, SPARE_FLAG, k);
                let mut b = [0u8; 8];
                f.get(me, me, spilled, 0, &mut b);
                assert_eq!(
                    u64::from_ne_bytes(b),
                    k,
                    "AM flag overtook the spilled put_nb payload at round {k}"
                );
                f.flag_add(me, peer, ACK_FLAG, 1);
            }
        }
        f.image_done(me);
    });
}
