//! Strategies: deterministic samplers with the `proptest` combinator
//! names the workspace uses (`prop_flat_map`, `prop_map`, `Just`, tuples,
//! integer ranges).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub trait Strategy {
    type Value: Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

#[derive(Clone, Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty strategy range");
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(hi >= lo, "empty strategy range");
                let span = (hi - lo + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A => 0);
impl_tuple_strategy!(A => 0, B => 1);
impl_tuple_strategy!(A => 0, B => 1, C => 2);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
