//! Distributed right-looking LU factorization with partial pivoting on a
//! 2-D block-cyclic grid — the communication skeleton of HPL, expressed
//! through `caf-rs` **row teams and column teams** exactly as the paper's
//! CAF port does (§V-B):
//!
//! * pivot search: `co_reduce` MAXLOC over the **column team**;
//! * pivot row exchange: pairwise coarray puts + `sync images`;
//! * panel broadcast (L blocks + pivots): `co_broadcast` over **row teams**;
//! * U-block-row broadcast: `co_broadcast` over **column teams**;
//! * trailing update: local `dgemm`.
//!
//! Local computation is accounted to the simulator's virtual clock through
//! `ImageCtx::compute`, converting flop counts with the machine model's
//! per-core rate, so simulated GFLOP/s reflect the modeled hardware while
//! the arithmetic itself really executes (enabling residual verification).

use crate::blas;
use crate::grid::{grid_dims, BlockCyclic};
use crate::matrix::{hpl_element, Matrix};
use caf_runtime::{Coarray, ImageCtx, Team};

/// Parameters of one HPL factorization.
#[derive(Clone, Copy, Debug)]
pub struct HplConfig {
    /// Global matrix dimension N.
    pub n: usize,
    /// Panel/block size NB.
    pub nb: usize,
    /// Matrix generator seed.
    pub seed: u64,
}

/// Per-image result of a factorization.
pub struct HplOutcome {
    /// Wall/virtual nanoseconds between the start and end barriers.
    pub time_ns: u64,
    /// Pivot vector: global row exchanged with row `s` at step `s`.
    pub pivots: Vec<usize>,
    /// My local piece of the factored matrix (L strictly below the
    /// diagonal with unit diagonal implied; U on and above).
    pub local: Matrix,
    /// The distribution used.
    pub grid: BlockCyclic,
    /// My grid row.
    pub prow: usize,
    /// My grid column.
    pub pcol: usize,
}

impl HplOutcome {
    /// HPL's flop count for an `n × n` solve (factorization dominates):
    /// `2/3·n³ + 3/2·n²`.
    pub fn flops(n: usize) -> f64 {
        let nf = n as f64;
        2.0 / 3.0 * nf * nf * nf + 1.5 * nf * nf
    }

    /// GFLOP/s achieved by this run.
    pub fn gflops(&self) -> f64 {
        Self::flops(self.grid.n) / self.time_ns.max(1) as f64
    }
}

/// Exchange (or locally swap) global rows `r1` and `r2` across my columns
/// in global column range `gc_lo..gc_hi`. Pairwise-synchronized through
/// `sync images` (rendezvous before the put, completion after), so no
/// global synchronization is needed — see the paper's point that teams let
/// disjoint communication proceed independently.
#[allow(clippy::too_many_arguments)]
fn swap_rows_distributed(
    img: &mut ImageCtx,
    grid: &BlockCyclic,
    local: &mut Matrix,
    prow: usize,
    pcol: usize,
    q_width: usize,
    r1: usize,
    r2: usize,
    gc_lo: usize,
    gc_hi: usize,
    swap_buf: &Coarray<f64>,
) {
    if r1 == r2 {
        return;
    }
    let p1 = grid.owner_row(r1);
    let p2 = grid.owner_row(r2);
    if prow != p1 && prow != p2 {
        return;
    }
    let lc_lo = grid.first_local_col_ge(pcol, gc_lo);
    let lc_hi = grid.first_local_col_ge(pcol, gc_hi);
    if p1 == p2 {
        // Both rows on my grid row: a purely local swap.
        local.swap_rows(grid.local_row(r1), grid.local_row(r2), lc_lo, lc_hi);
        return;
    }
    if lc_lo == lc_hi {
        return; // no columns of mine in range; partner skips likewise
    }
    let width = lc_hi - lc_lo;
    let my_r = if prow == p1 { r1 } else { r2 };
    let partner_prow = if prow == p1 { p2 } else { p1 };
    let partner_image = partner_prow * q_width + pcol + 1; // 1-based initial
    let my_lr = grid.local_row(my_r);

    let mut outgoing = vec![0.0f64; width];
    for (t, lj) in (lc_lo..lc_hi).enumerate() {
        outgoing[t] = local.get(my_lr, lj);
    }
    img.sync_images(&[partner_image]); // rendezvous: partner's buffer free
    swap_buf.put(partner_image, 0, &outgoing);
    img.sync_images(&[partner_image]); // both payloads have landed
    let mut incoming = vec![0.0f64; width];
    swap_buf.get(img.this_image(), 0, &mut incoming);
    for (t, lj) in (lc_lo..lc_hi).enumerate() {
        local.set(my_lr, lj, incoming[t]);
    }
}

/// Account `flops` of local computation to the virtual clock.
fn account(img: &ImageCtx, flops: u64) {
    let ns = img.fabric().cost().flops_to_ns(flops);
    img.compute(ns);
}

/// Run one distributed factorization. Collective over all images of the
/// run; every image receives its own [`HplOutcome`].
///
/// # Panics
/// Panics if the matrix turns out numerically singular (never the case for
/// the built-in generator at sensible sizes).
#[allow(clippy::needless_range_loop)] // index loops mirror the BLAS math
pub fn factorize(img: &mut ImageCtx, cfg: &HplConfig) -> HplOutcome {
    let n_images = img.num_images();
    let (p, q) = grid_dims(n_images);
    let rank0 = img.this_image() - 1;
    let (prow, pcol) = (rank0 / q, rank0 % q);
    let grid = BlockCyclic::new(cfg.n, cfg.nb, p, q);

    // Local storage, filled from the deterministic generator.
    let lr = grid.local_rows(prow);
    let lc = grid.local_cols(pcol);
    let mut local = Matrix::zeros(lr.max(1), lc.max(1));
    for lj in 0..lc {
        let gj = grid.global_col(pcol, lj);
        for li in 0..lr {
            let gi = grid.global_row(prow, li);
            local.set(li, lj, hpl_element(cfg.seed, cfg.n, gi, gj));
        }
    }

    // Row team = my grid row (team rank == pcol); column team = my grid
    // column (team rank == prow). Both formed from the initial team.
    let mut row_team: Team = img.form_team(prow as i64);
    let mut col_team: Team = img.form_team(pcol as i64);
    debug_assert_eq!(row_team.this_image() - 1, pcol);
    debug_assert_eq!(col_team.this_image() - 1, prow);

    // Pivot-row exchange buffer (initial-team coarray, one row slice).
    let max_lc = grid.local_cols(0).max(1);
    let swap_buf = img.coarray::<f64>(max_lc);

    let mut pivots = vec![0usize; cfg.n];
    img.sync_all();
    let t0 = img.now_ns();

    let nblocks = cfg.n.div_ceil(cfg.nb);
    for k in 0..nblocks {
        let gcol0 = k * cfg.nb;
        let nb_k = cfg.nb.min(cfg.n - gcol0);
        let q_k = grid.owner_col(gcol0);
        let p_k = grid.owner_row(gcol0);
        let lj0 = grid.local_col(gcol0); // valid only on pcol == q_k

        // -------- (a) panel factorization, on grid column q_k ----------
        let mut pivots_k = vec![0u64; nb_k];
        if pcol == q_k {
            for j in 0..nb_k {
                let gdiag = gcol0 + j;
                let lj = lj0 + j;
                // Local pivot candidate among my rows >= gdiag.
                let li_from = grid.first_local_row_ge(prow, gdiag);
                let mut cand = (-1.0f64, 0u64);
                for li in li_from..lr {
                    let v = local.get(li, lj).abs();
                    if v > cand.0 {
                        cand = (v, grid.global_row(prow, li) as u64);
                    }
                }
                account(img, 2 * (lr - li_from) as u64);
                // MAXLOC over the column team (smaller row wins ties).
                let mut m = [cand];
                col_team.comm_mut().co_reduce_with(&mut m, |a, b| {
                    if a.0 > b.0 || (a.0 == b.0 && a.1 <= b.1) {
                        a
                    } else {
                        b
                    }
                });
                assert!(
                    m[0].0 > 0.0,
                    "HPL: matrix numerically singular at global column {gdiag}"
                );
                let piv = m[0].1 as usize;
                pivots_k[j] = piv as u64;
                // Swap within the panel columns only (deferred elsewhere).
                swap_rows_distributed(
                    img,
                    &grid,
                    &mut local,
                    prow,
                    pcol,
                    q,
                    gdiag,
                    piv,
                    gcol0,
                    gcol0 + nb_k,
                    &swap_buf,
                );
                // Broadcast the (post-swap) pivot row segment to the team.
                let owner = grid.owner_row(gdiag);
                let mut rowseg = vec![0.0f64; nb_k - j];
                if prow == owner {
                    let plr = grid.local_row(gdiag);
                    for (t, col) in (lj..lj0 + nb_k).enumerate() {
                        rowseg[t] = local.get(plr, col);
                    }
                }
                col_team.comm_mut().co_broadcast(&mut rowseg, owner);
                let pivot_val = rowseg[0];
                // Scale my subdiagonal column and rank-1 update the panel.
                let li1 = grid.first_local_row_ge(prow, gdiag + 1);
                let inv = 1.0 / pivot_val;
                for li in li1..lr {
                    let v = local.get(li, lj) * inv;
                    local.set(li, lj, v);
                }
                if li1 < lr && j + 1 < nb_k {
                    let m_rows = lr - li1;
                    let n_cols = nb_k - j - 1;
                    // x = L column (li1.., lj), y = rowseg[1..].
                    let x: Vec<f64> = (li1..lr).map(|li| local.get(li, lj)).collect();
                    let ld = local.ld();
                    let a = &mut local.as_mut_slice()[(lj + 1) * ld + li1..];
                    blas::dger_minus(m_rows, n_cols, &x, &rowseg[1..], a, ld);
                    account(img, blas::dgemm_flops(m_rows, n_cols, 1) + m_rows as u64);
                }
            }
        }

        // -------- (b) pivots travel along row teams --------------------
        row_team.comm_mut().co_broadcast(&mut pivots_k, q_k);
        for (j, &pv) in pivots_k.iter().enumerate() {
            pivots[gcol0 + j] = pv as usize;
        }

        // -------- (c) panel L slab travels along row teams -------------
        let act0 = grid.first_local_row_ge(prow, gcol0);
        let slab_rows = lr - act0;
        let mut slab = vec![0.0f64; slab_rows * nb_k];
        if pcol == q_k {
            for jj in 0..nb_k {
                for i in 0..slab_rows {
                    slab[i + jj * slab_rows] = local.get(act0 + i, lj0 + jj);
                }
            }
        }
        if slab_rows > 0 {
            row_team.comm_mut().co_broadcast(&mut slab, q_k);
        }

        // -------- (d) apply row interchanges outside the panel ---------
        for (j, &pv) in pivots_k.iter().enumerate() {
            let s = gcol0 + j;
            let piv = pv as usize;
            swap_rows_distributed(
                img, &grid, &mut local, prow, pcol, q, s, piv, 0, gcol0, &swap_buf,
            );
            swap_rows_distributed(
                img,
                &grid,
                &mut local,
                prow,
                pcol,
                q,
                s,
                piv,
                gcol0 + nb_k,
                cfg.n,
                &swap_buf,
            );
        }

        // -------- (e) U12 = L11⁻¹ · A(K, trailing) on grid row p_k ------
        let lt_c0 = grid.first_local_col_ge(pcol, gcol0 + nb_k);
        let tcols = lc - lt_c0;
        let mut u12 = vec![0.0f64; nb_k * tcols];
        if prow == p_k && tcols > 0 {
            let li_k0 = grid.local_row(gcol0);
            let l11_off = li_k0 - act0;
            // Extract L11 from the slab (unit diagonal implied).
            let mut l11 = vec![0.0f64; nb_k * nb_k];
            for jj in 0..nb_k {
                for i in 0..nb_k {
                    l11[i + jj * nb_k] = slab[l11_off + i + jj * slab_rows];
                }
            }
            let ld = local.ld();
            let b = &mut local.as_mut_slice()[lt_c0 * ld + li_k0..];
            blas::dtrsm_lower_unit(nb_k, tcols, &l11, nb_k, b, ld);
            account(img, blas::dtrsm_flops(nb_k, tcols));
            for jj in 0..tcols {
                for i in 0..nb_k {
                    u12[i + jj * nb_k] = local.get(li_k0 + i, lt_c0 + jj);
                }
            }
        }

        // -------- (f) U12 travels along column teams --------------------
        if tcols > 0 {
            col_team.comm_mut().co_broadcast(&mut u12, p_k);
        }

        // -------- (g) trailing update: A22 -= L21 · U12 -----------------
        let lt_r0 = grid.first_local_row_ge(prow, gcol0 + nb_k);
        let trows = lr - lt_r0;
        if trows > 0 && tcols > 0 {
            let slab_off = lt_r0 - act0;
            let ld = local.ld();
            let a = &slab[slab_off..];
            let c = &mut local.as_mut_slice()[lt_c0 * ld + lt_r0..];
            blas::dgemm_minus(trows, tcols, nb_k, a, slab_rows, &u12, nb_k, c, ld);
            account(img, blas::dgemm_flops(trows, tcols, nb_k));
        }
    }

    img.sync_all();
    let time_ns = img.now_ns() - t0;

    HplOutcome {
        time_ns,
        pivots,
        local,
        grid,
        prow,
        pcol,
    }
}
