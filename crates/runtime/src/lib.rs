//! # caf-runtime
//!
//! A Coarray Fortran-style PGAS runtime: SPMD images, coarrays, teams
//! (Fortran 2015 `form team` / `change team` / `end team` / `sync team`),
//! synchronization statements, events, and atomic operations — the runtime
//! layer the paper adds to the OpenUH compiler, reimplemented as a Rust
//! library API.
//!
//! The API mirrors the *lowered* form OpenUH emits for CAF programs: what
//! the Fortran front-end turns `sync all` or `A(:)[k] = B(:)` into is here
//! a method call on the per-image context [`ImageCtx`].
//!
//! ```no_run
//! use caf_runtime::{run, RunConfig};
//!
//! // 8 images on a 2-node simulated cluster, Fortran-style 1-based images.
//! let cfg = RunConfig::sim_packed(caf_topology::presets::mini(2, 4), 8);
//! run(cfg, |img| {
//!     let me = img.this_image(); // 1..=8
//!     let co = img.coarray::<f64>(4);
//!     if me == 1 {
//!         co.put(2, 0, &[1.0, 2.0, 3.0, 4.0]); // A(:)[2] = ...
//!     }
//!     img.sync_all();
//!     me
//! });
//! ```
//!
//! Image numbering follows Fortran: **1-based** everywhere in this crate's
//! public API. The 0-based process ranks of `caf-topology`/`caf-fabric`
//! stay internal.

#![warn(missing_docs)]

pub mod coarray;
pub mod config;
pub mod events;
pub mod image;
pub mod lock;
pub mod recovery;
pub mod team;

pub use caf_collectives::{
    BarrierAlgo, BcastAlgo, CoNumeric, CoOp, CoValue, CollectiveConfig, GatherAlgo, ReduceAlgo,
    SizePolicy,
};
pub use caf_fabric::RecoveryError;
pub use coarray::Coarray;
pub use config::{FabricChoice, RunConfig};
pub use events::Events;
pub use image::ImageCtx;
pub use lock::LockSet;
pub use recovery::CheckpointStore;
pub use team::Team;

use caf_fabric::ArcFabric;
use caf_topology::ProcId;
use std::sync::Arc;

/// Launch an SPMD run: one OS thread per image, each executing `body` with
/// its own [`ImageCtx`]. Returns the per-image results in image order
/// (index 0 = image 1). Panics in any image are re-raised after all images
/// have been joined.
pub fn run<R, B>(cfg: RunConfig, body: B) -> Vec<R>
where
    R: Send + 'static,
    B: Fn(&mut ImageCtx) -> R + Send + Sync + 'static,
{
    let collectives = cfg.collectives;
    let fabric = cfg.build_fabric();
    run_on_fabric(fabric, collectives, body)
}

/// Like [`run`], but on an existing fabric (benchmark harnesses reuse one
/// fabric across phases to keep its statistics and virtual clock).
pub fn run_on_fabric<R, B>(fabric: ArcFabric, collectives: CollectiveConfig, body: B) -> Vec<R>
where
    R: Send + 'static,
    B: Fn(&mut ImageCtx) -> R + Send + Sync + 'static,
{
    let all: Vec<ProcId> = (0..fabric.n_images()).map(ProcId).collect();
    run_hosted(fabric, &all, collectives, body)
        .into_iter()
        .map(|(_, r)| r)
        .collect()
}

/// Like [`run_on_fabric`], but spawning threads only for `hosted` — the
/// subset of images this process is responsible for. This is the entry
/// point for multi-process backends (`SocketFabric` fleets launched by
/// `caf-launch`): every process calls `run_hosted` with its own node's
/// images and the fabric carries the rest of the team over the wire.
/// Returns `(image rank, result)` pairs in `hosted` order (ranks 0-based,
/// matching `ProcId`).
pub fn run_hosted<R, B>(
    fabric: ArcFabric,
    hosted: &[ProcId],
    collectives: CollectiveConfig,
    body: B,
) -> Vec<(ProcId, R)>
where
    R: Send + 'static,
    B: Fn(&mut ImageCtx) -> R + Send + Sync + 'static,
{
    run_hosted_inner(fabric, hosted, collectives, false, body)
}

/// Like [`run_hosted`], but for a **respawned** process rejoining a
/// running fleet: every hosted image enters via [`ImageCtx::rejoin`] —
/// joining the survivors' recovery fence instead of the initial-team
/// bootstrap — and comes up inside the recovery team at checkpoint epoch
/// 0. The body is expected to [`ImageCtx::restore`] and resume; write it
/// restart-shaped (restore-then-loop) and the same closure serves first
/// launches, survivors, and rejoiners alike.
pub fn run_hosted_rejoin<R, B>(
    fabric: ArcFabric,
    hosted: &[ProcId],
    collectives: CollectiveConfig,
    body: B,
) -> Vec<(ProcId, R)>
where
    R: Send + 'static,
    B: Fn(&mut ImageCtx) -> R + Send + Sync + 'static,
{
    run_hosted_inner(fabric, hosted, collectives, true, body)
}

fn run_hosted_inner<R, B>(
    fabric: ArcFabric,
    hosted: &[ProcId],
    collectives: CollectiveConfig,
    rejoin: bool,
    body: B,
) -> Vec<(ProcId, R)>
where
    R: Send + 'static,
    B: Fn(&mut ImageCtx) -> R + Send + Sync + 'static,
{
    let body = Arc::new(body);
    let mut handles = Vec::with_capacity(hosted.len());
    for &p in hosted {
        let fabric = fabric.clone();
        let body = Arc::clone(&body);
        let handle = std::thread::Builder::new()
            .name(format!("image-{}", p.index() + 1))
            .stack_size(4 * 1024 * 1024)
            .spawn(move || {
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut ctx = if rejoin {
                        ImageCtx::rejoin(fabric.clone(), p, collectives).unwrap_or_else(|e| {
                            panic!("image {} failed to rejoin the fleet: {e}", p.index() + 1)
                        })
                    } else {
                        ImageCtx::new(fabric.clone(), p, collectives)
                    };
                    let out = body(&mut ctx);
                    ctx.finalize();
                    out
                }));
                match run {
                    Ok(out) => out,
                    Err(payload) => {
                        // Fail the whole team loudly instead of hanging peers.
                        fabric.poison(&format!("image {} panicked", p.index() + 1));
                        std::panic::resume_unwind(payload);
                    }
                }
            })
            .expect("spawn image thread");
        handles.push((p, handle));
    }
    let mut results = Vec::with_capacity(hosted.len());
    let mut first_panic: Option<String> = None;
    for (p, h) in handles {
        match h.join() {
            Ok(r) => results.push((p, r)),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                if first_panic.is_none() {
                    first_panic = Some(format!("image {} panicked: {msg}", p.index() + 1));
                }
            }
        }
    }
    if let Some(msg) = first_panic {
        // Flight recorder: spill this process's telemetry (counters, wire
        // probes, trace window) before taking the process down, so the
        // supervisor can reconstruct what the node saw even when the
        // control connection never gets the frame out.
        spill_telemetry(
            &fabric,
            caf_fabric::TelemetryPhase::FlightRecorder,
            Some(&msg),
        );
        panic!("{msg}");
    }
    spill_telemetry(&fabric, caf_fabric::TelemetryPhase::Final, None);
    results
}

/// Like [`run_on_fabric`], but for recovery-aware programs on a fabric
/// that may lose images: panics of images the fabric reports dead (a chaos
/// `kill_image_at`, a crashed peer) are tolerated instead of re-raised,
/// and a dead image's thread does not poison the fabric — the survivors'
/// `try_*` entry points detect the failure and the body is expected to
/// recover via `form_recovery_team`/`restore`. Panics of images the fabric
/// still considers alive are real bugs and re-raise as in [`run`].
///
/// Returns `(1-based image, result)` pairs for the images that completed,
/// in image order.
pub fn run_surviving<R, B>(
    fabric: ArcFabric,
    collectives: CollectiveConfig,
    body: B,
) -> Vec<(usize, R)>
where
    R: Send + 'static,
    B: Fn(&mut ImageCtx) -> R + Send + Sync + 'static,
{
    let body = Arc::new(body);
    let mut handles = Vec::with_capacity(fabric.n_images());
    for i in 0..fabric.n_images() {
        let p = ProcId(i);
        let fabric = fabric.clone();
        let body = Arc::clone(&body);
        let handle = std::thread::Builder::new()
            .name(format!("image-{}", i + 1))
            .stack_size(4 * 1024 * 1024)
            .spawn(move || {
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut ctx = ImageCtx::new(fabric.clone(), p, collectives);
                    let out = body(&mut ctx);
                    ctx.finalize();
                    out
                }));
                match run {
                    Ok(out) => out,
                    Err(payload) => {
                        // A fabric-killed image's unwind is the *expected*
                        // path; poisoning here would re-poison a fabric the
                        // survivors may already have healed.
                        if fabric.alive_images().contains(&p) {
                            fabric.poison(&format!("image {} panicked", i + 1));
                        }
                        std::panic::resume_unwind(payload);
                    }
                }
            })
            .expect("spawn image thread");
        handles.push((p, handle));
    }
    let mut results = Vec::with_capacity(handles.len());
    let mut first_panic: Option<String> = None;
    for (p, h) in handles {
        match h.join() {
            Ok(r) => results.push((p.index() + 1, r)),
            Err(payload) => {
                if !fabric.alive_images().contains(&p) {
                    continue; // the fabric retired this image; survivors carried on
                }
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                if first_panic.is_none() {
                    first_panic = Some(format!("image {} panicked: {msg}", p.index() + 1));
                }
            }
        }
    }
    if let Some(msg) = first_panic {
        spill_telemetry(
            &fabric,
            caf_fabric::TelemetryPhase::FlightRecorder,
            Some(&msg),
        );
        panic!("{msg}");
    }
    results
}

/// If `CAF_TRACE_DIR` is set and the fabric produces process telemetry
/// (only multi-process fabrics do), write the encoded blob to
/// `$CAF_TRACE_DIR/caf-telemetry-node<R>-<phase>.bin`. Failures are
/// reported on stderr but never escalate — observability must not take
/// down an otherwise healthy run (nor mask the real panic on an unhealthy
/// one).
fn spill_telemetry(fabric: &ArcFabric, phase: caf_fabric::TelemetryPhase, cause: Option<&str>) {
    let Ok(dir) = std::env::var("CAF_TRACE_DIR") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let Some(telemetry) = fabric.process_telemetry(phase, cause) else {
        return;
    };
    let path = std::path::Path::new(&dir).join(format!(
        "caf-telemetry-node{}-{}.bin",
        telemetry.node,
        phase.label()
    ));
    if let Err(e) =
        std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, telemetry.encode()))
    {
        eprintln!(
            "caf-runtime: telemetry spill to {} failed: {e}",
            path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_topology::presets;

    #[test]
    fn run_returns_results_in_image_order() {
        let cfg = RunConfig::sim_packed(presets::mini(2, 2), 4);
        let out = run(cfg, |img| img.this_image() * 10);
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    #[should_panic(expected = "image 3 panicked")]
    fn run_propagates_panics_with_image_number() {
        let cfg = RunConfig::sim_packed(presets::mini(1, 4), 4);
        run(cfg, |img| {
            if img.this_image() == 3 {
                panic!("bad image");
            }
        });
    }

    #[test]
    fn run_on_thread_fabric_smoke() {
        let cfg = RunConfig::threads_packed(presets::mini(2, 2), 4);
        let out = run(cfg, |img| {
            img.sync_all();
            img.num_images()
        });
        assert_eq!(out, vec![4; 4]);
    }
}
