//! The socket fabric's wire protocol: addresses, streams, and
//! length-prefixed frames.
//!
//! Every message on every connection — data-plane traffic between peer
//! processes, and the rendezvous exchange with the launcher's coordinator —
//! is one [`Frame`], encoded as a little-endian `u32` body length followed
//! by a one-byte tag and the tag's fixed fields. The format is deliberately
//! hand-rolled (no serde on the hot path) and versioned by the `OPEN`
//! handshake's magic, so a mismatched peer fails loudly at connect time
//! rather than corrupting segments.

use crate::am::AmOp;
use crate::stats::StatsSnapshot;
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Protocol magic carried by [`Frame::Open`] and [`Frame::Hello`]; bump on
/// any incompatible frame-format change.
pub const WIRE_MAGIC: u32 = 0xCAF5_0C05;

/// Upper bound on one frame body — a corrupted length prefix fails here
/// instead of attempting a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// A transport endpoint address, printable as `uds:<path>` or
/// `tcp:<ip>:<port>` (the form exchanged through the rendezvous and the
/// `CAF_LAUNCH_COORD` environment variable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Addr {
    /// Unix-domain socket path (node-local fleets).
    Uds(PathBuf),
    /// TCP socket address (cross-node fleets).
    Tcp(SocketAddr),
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Uds(p) => write!(f, "uds:{}", p.display()),
            Addr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

impl std::str::FromStr for Addr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        if let Some(path) = s.strip_prefix("uds:") {
            Ok(Addr::Uds(PathBuf::from(path)))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            addr.parse()
                .map(Addr::Tcp)
                .map_err(|e| format!("bad tcp address {addr:?}: {e}"))
        } else {
            Err(format!("address {s:?} has neither uds: nor tcp: prefix"))
        }
    }
}

/// Which transport a listener binds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Unix-domain sockets under the system temp directory.
    Uds,
    /// TCP on the loopback interface.
    Tcp,
}

impl Transport {
    /// Transport selected by the environment: `CAF_SOCKET_TCP=1` forces
    /// TCP, anything else picks Unix-domain sockets.
    pub fn from_env() -> Self {
        match std::env::var("CAF_SOCKET_TCP") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Transport::Tcp,
            _ => Transport::Uds,
        }
    }
}

/// A connected byte stream over either transport.
#[derive(Debug)]
pub enum Stream {
    /// Unix-domain connection.
    Uds(UnixStream),
    /// TCP connection (Nagle disabled — frames are latency-sensitive).
    Tcp(TcpStream),
}

impl Stream {
    /// Clone the underlying descriptor so reads and writes can proceed from
    /// different threads.
    pub fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Uds(s) => Stream::Uds(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    /// Bound every read so reader threads can poll shutdown/poison flags.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Uds(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    /// Bound every write so a peer that stopped draining cannot wedge the
    /// sender forever.
    pub fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Uds(s) => s.set_write_timeout(t),
            Stream::Tcp(s) => s.set_write_timeout(t),
        }
    }

    /// Orderly close of the write half (flushes buffered data before the
    /// peer observes EOF).
    pub fn shutdown_write(&self) {
        let _ = match self {
            Stream::Uds(s) => s.shutdown(std::net::Shutdown::Write),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
        };
    }

    /// Connect to `addr` once (no retry — backoff policy lives in the
    /// fabric, which owns the stats counters).
    pub fn connect(addr: &Addr) -> io::Result<Stream> {
        match addr {
            Addr::Uds(p) => UnixStream::connect(p).map(Stream::Uds),
            Addr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Uds(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Uds(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Uds(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A bound listener over either transport. Dropping a Unix-domain listener
/// unlinks its socket file.
#[derive(Debug)]
pub enum Listener {
    /// Unix-domain listener plus the path to unlink on drop.
    Uds(UnixListener, PathBuf),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Bind a fresh listener: a unique socket file under the temp directory
    /// for UDS, an ephemeral loopback port for TCP.
    pub fn bind(transport: Transport) -> io::Result<Listener> {
        match transport {
            Transport::Uds => {
                use std::sync::atomic::{AtomicU64, Ordering};
                static SEQ: AtomicU64 = AtomicU64::new(0);
                let path = std::env::temp_dir().join(format!(
                    "caf-sock-{}-{}.sock",
                    std::process::id(),
                    SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                let _ = std::fs::remove_file(&path);
                Ok(Listener::Uds(UnixListener::bind(&path)?, path))
            }
            Transport::Tcp => TcpListener::bind("127.0.0.1:0").map(Listener::Tcp),
        }
    }

    /// The address peers should dial.
    pub fn local_addr(&self) -> io::Result<Addr> {
        Ok(match self {
            Listener::Uds(_, p) => Addr::Uds(p.clone()),
            Listener::Tcp(l) => Addr::Tcp(l.local_addr()?),
        })
    }

    /// Toggle nonblocking accepts (the fabric's accept loop polls a
    /// shutdown flag between attempts).
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Uds(l, _) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    /// Accept one connection.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Uds(l, _) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Uds(s))
            }
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Uds(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One protocol message. Data-plane tags (`Open`..`Bye`) flow on peer
/// connections; rendezvous tags (`Hello`..`Abort`) flow on the coordinator
/// connection. See the module docs for encoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// First frame on every data connection: the dialing process
    /// identifies itself (and the protocol version, via `magic`).
    Open {
        /// Dialer's process (node) rank.
        node: u32,
        /// Must equal [`WIRE_MAGIC`].
        magic: u32,
        /// Path of the dialer's shared-memory segment file (empty when the
        /// dialer offers none). A receiver that shares the host maps it and
        /// services its side of the pair's traffic at memory speed.
        shm: String,
    },
    /// One-sided write into a hosted image's segment. `ack != 0` requests
    /// a [`Frame::PutAck`] echoing it once the payload is applied.
    Put {
        /// Issuing image (global 0-based rank).
        src: u32,
        /// Target image (must be hosted by the receiver).
        dst: u32,
        /// Target segment id.
        seg: u64,
        /// Byte offset within the segment.
        off: u64,
        /// Completion-ack cookie (0 = no ack requested).
        ack: u64,
        /// Payload bytes.
        data: Vec<u8>,
    },
    /// Completion ack for a [`Frame::Put`].
    PutAck {
        /// The cookie from the acked put.
        ack: u64,
    },
    /// One-sided read request.
    Get {
        /// Issuing image.
        src: u32,
        /// Source image (must be hosted by the receiver).
        dst: u32,
        /// Source segment id.
        seg: u64,
        /// Byte offset within the segment.
        off: u64,
        /// Bytes requested.
        len: u32,
        /// Request cookie echoed by the response.
        req: u64,
    },
    /// Response to a [`Frame::Get`].
    GetResp {
        /// The request cookie.
        req: u64,
        /// The bytes read.
        data: Vec<u8>,
    },
    /// Remote atomic fetch-and-add.
    AmoFadd {
        /// Issuing image.
        src: u32,
        /// Target image.
        dst: u32,
        /// Target segment id.
        seg: u64,
        /// Byte offset (8-byte aligned).
        off: u64,
        /// Addend.
        delta: u64,
        /// Request cookie.
        req: u64,
    },
    /// Remote atomic compare-and-swap.
    AmoCas {
        /// Issuing image.
        src: u32,
        /// Target image.
        dst: u32,
        /// Target segment id.
        seg: u64,
        /// Byte offset (8-byte aligned).
        off: u64,
        /// Expected value.
        expected: u64,
        /// Replacement value.
        new: u64,
        /// Request cookie.
        req: u64,
    },
    /// Response to either AMO: the previous cell value.
    AmoResp {
        /// The request cookie.
        req: u64,
        /// Previous value of the cell.
        old: u64,
    },
    /// A batch of active-message ops from one image to one target image,
    /// applied at the receiver **in vector order** (the AM tier's
    /// per-destination program-order guarantee). `ack` requests a
    /// [`Frame::PutAck`] once every op in the batch has been applied, so
    /// the sender's `quiet` covers batched AMs exactly like nonblocking
    /// puts.
    AmBatch {
        /// Issuing image (global 0-based rank).
        src: u32,
        /// Target image (must be hosted by the receiver).
        dst: u32,
        /// Completion-ack cookie (0 = no ack requested).
        ack: u64,
        /// The ops, in program order.
        ops: Vec<AmOp>,
    },
    /// One-way accumulating sync-flag notification (ordered after any
    /// preceding puts on the same connection — the fabric's point-to-point
    /// ordering guarantee).
    FlagAdd {
        /// Issuing image.
        src: u32,
        /// Target image.
        dst: u32,
        /// Target flag id.
        flag: u64,
        /// Increment.
        delta: u64,
    },
    /// Liveness beacon, sent on every egress connection each heartbeat
    /// period. Carries the sender's counter snapshot so every peer holds a
    /// last-known picture of what the sender was doing — the flight
    /// recorder's view of a process that dies between beacons.
    Heartbeat {
        /// Sender's process rank.
        node: u32,
        /// The sender's [`StatsSnapshot`] at send time.
        stats: StatsSnapshot,
    },
    /// Graceful goodbye: the sender's hosted images have all finished, no
    /// more requests or heartbeats will follow, and subsequent EOF from it
    /// is *not* a death.
    Bye {
        /// Sender's process rank.
        node: u32,
    },
    /// First frame on a data connection dialed by a **respawned** process:
    /// like [`Frame::Open`], but announces that the dialer is a new
    /// incarnation of a previously dead rank. `generation` is the recovery
    /// generation this rejoin establishes — a receiver at generation `g`
    /// accepts only `generation == g + 1` and drops anything else as a
    /// stale frame from a dead incarnation. `addr` is the rejoiner's fresh
    /// data-plane listen address, which the receiver back-dials to rebuild
    /// its egress half of the pair.
    Rejoin {
        /// Dialer's process (node) rank.
        node: u32,
        /// The recovery generation this rejoin establishes.
        generation: u64,
        /// The rejoiner's listen address, as `Addr` text.
        addr: String,
        /// Must equal [`WIRE_MAGIC`].
        magic: u32,
        /// Path of the rejoiner's **new** generation-tagged shared-memory
        /// segment file (empty when none). Receivers must remap: the dead
        /// incarnation's segment is gone.
        shm: String,
    },
    /// Recovery fence mark, sent point-to-point to every recovery
    /// participant during [`Fabric::heal`](crate::Fabric::heal). Round 1
    /// means "my images have all stopped; everything I sent before this
    /// frame is pre-recovery traffic" (per-connection FIFO drains it);
    /// round 2 means "my state reset for `generation` is complete". No new
    /// traffic may be issued until round 2 arrives from every participant.
    RecoverBarrier {
        /// Sender's process rank.
        node: u32,
        /// Fence round (1 = stopped, 2 = reset complete).
        round: u64,
        /// The generation being established.
        generation: u64,
    },
    /// Rendezvous: a fleet member announces its rank and listen address.
    Hello {
        /// Member's process rank.
        node: u32,
        /// Its listen address, as `Addr` text.
        addr: String,
        /// Must equal [`WIRE_MAGIC`].
        magic: u32,
    },
    /// Rendezvous: the coordinator's reply — every member's listen address,
    /// indexed by process rank.
    Peers {
        /// Listen addresses in rank order.
        addrs: Vec<String>,
    },
    /// A fleet member's final result report (per hosted image).
    Done {
        /// Member's process rank.
        node: u32,
        /// `(global image rank, result)` pairs for every hosted image.
        results: Vec<(u32, u64)>,
    },
    /// Rendezvous: abort the fleet with a message.
    Abort {
        /// Human-readable reason.
        msg: String,
    },
    /// Control-plane telemetry shipment: an encoded
    /// [`NodeTelemetry`](crate::socket::obs::NodeTelemetry) blob (trace
    /// window, counters, wire/latency/heartbeat observations). Flows only on
    /// the coordinator connection; the payload format is versioned
    /// independently by its own magic.
    Telemetry {
        /// Sender's process rank.
        node: u32,
        /// Encoded `NodeTelemetry`.
        payload: Vec<u8>,
    },
}

const T_OPEN: u8 = 1;
const T_PUT: u8 = 2;
const T_PUT_ACK: u8 = 3;
const T_GET: u8 = 4;
const T_GET_RESP: u8 = 5;
const T_AMO_FADD: u8 = 6;
const T_AMO_CAS: u8 = 7;
const T_AMO_RESP: u8 = 8;
const T_FLAG_ADD: u8 = 9;
const T_HEARTBEAT: u8 = 10;
const T_BYE: u8 = 11;
const T_REJOIN: u8 = 12;
const T_RECOVER_BARRIER: u8 = 13;
const T_AM_BATCH: u8 = 14;
const T_HELLO: u8 = 16;
const T_PEERS: u8 = 17;
const T_DONE: u8 = 18;
const T_ABORT: u8 = 19;
const T_TELEMETRY: u8 = 20;

/// Field count of a [`StatsSnapshot`] on the wire (fixed little-endian
/// u64s, declaration order).
const STATS_WORDS: usize = 30;

fn stats_words(s: &StatsSnapshot) -> [u64; STATS_WORDS] {
    [
        s.puts_intra,
        s.puts_inter,
        s.gets_intra,
        s.gets_inter,
        s.flags_intra,
        s.flags_inter,
        s.flag_waits,
        s.amos,
        s.bytes_intra,
        s.bytes_inter,
        s.puts_nb_injected,
        s.puts_nb_completed,
        s.wire_frames_tx,
        s.wire_frames_rx,
        s.wire_bytes_tx,
        s.wire_bytes_rx,
        s.wire_retries,
        s.wire_reconnects,
        s.sim_events_pushed,
        s.sim_events_popped,
        s.sim_queue_hwm,
        s.sim_wakeups,
        s.sim_commits,
        s.ams_injected,
        s.am_batches_flushed,
        s.am_payload_bytes,
        s.am_fused,
        s.shm_puts,
        s.shm_bytes,
        s.shm_flag_ops,
    ]
}

pub(crate) fn put_stats(buf: &mut Vec<u8>, s: &StatsSnapshot) {
    for w in stats_words(s) {
        put_u64(buf, w);
    }
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    pub(crate) fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "truncated frame body",
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn bytes(&mut self) -> io::Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    pub(crate) fn string(&mut self) -> io::Result<String> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 string in frame"))
    }

    pub(crate) fn stats(&mut self) -> io::Result<StatsSnapshot> {
        let mut w = [0u64; STATS_WORDS];
        for slot in &mut w {
            *slot = self.u64()?;
        }
        Ok(StatsSnapshot {
            puts_intra: w[0],
            puts_inter: w[1],
            gets_intra: w[2],
            gets_inter: w[3],
            flags_intra: w[4],
            flags_inter: w[5],
            flag_waits: w[6],
            amos: w[7],
            bytes_intra: w[8],
            bytes_inter: w[9],
            puts_nb_injected: w[10],
            puts_nb_completed: w[11],
            wire_frames_tx: w[12],
            wire_frames_rx: w[13],
            wire_bytes_tx: w[14],
            wire_bytes_rx: w[15],
            wire_retries: w[16],
            wire_reconnects: w[17],
            sim_events_pushed: w[18],
            sim_events_popped: w[19],
            sim_queue_hwm: w[20],
            sim_wakeups: w[21],
            sim_commits: w[22],
            ams_injected: w[23],
            am_batches_flushed: w[24],
            am_payload_bytes: w[25],
            am_fused: w[26],
            shm_puts: w[27],
            shm_bytes: w[28],
            shm_flag_ops: w[29],
        })
    }
}

impl Frame {
    /// Encode into a `len || tag || fields` byte vector ready for one
    /// `write_all`.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        put_u32(&mut b, 0); // length placeholder
        match self {
            Frame::Open { node, magic, shm } => {
                b.push(T_OPEN);
                put_u32(&mut b, *node);
                put_u32(&mut b, *magic);
                put_bytes(&mut b, shm.as_bytes());
            }
            Frame::Put {
                src,
                dst,
                seg,
                off,
                ack,
                data,
            } => {
                b.push(T_PUT);
                put_u32(&mut b, *src);
                put_u32(&mut b, *dst);
                put_u64(&mut b, *seg);
                put_u64(&mut b, *off);
                put_u64(&mut b, *ack);
                put_bytes(&mut b, data);
            }
            Frame::PutAck { ack } => {
                b.push(T_PUT_ACK);
                put_u64(&mut b, *ack);
            }
            Frame::Get {
                src,
                dst,
                seg,
                off,
                len,
                req,
            } => {
                b.push(T_GET);
                put_u32(&mut b, *src);
                put_u32(&mut b, *dst);
                put_u64(&mut b, *seg);
                put_u64(&mut b, *off);
                put_u32(&mut b, *len);
                put_u64(&mut b, *req);
            }
            Frame::GetResp { req, data } => {
                b.push(T_GET_RESP);
                put_u64(&mut b, *req);
                put_bytes(&mut b, data);
            }
            Frame::AmoFadd {
                src,
                dst,
                seg,
                off,
                delta,
                req,
            } => {
                b.push(T_AMO_FADD);
                put_u32(&mut b, *src);
                put_u32(&mut b, *dst);
                put_u64(&mut b, *seg);
                put_u64(&mut b, *off);
                put_u64(&mut b, *delta);
                put_u64(&mut b, *req);
            }
            Frame::AmoCas {
                src,
                dst,
                seg,
                off,
                expected,
                new,
                req,
            } => {
                b.push(T_AMO_CAS);
                put_u32(&mut b, *src);
                put_u32(&mut b, *dst);
                put_u64(&mut b, *seg);
                put_u64(&mut b, *off);
                put_u64(&mut b, *expected);
                put_u64(&mut b, *new);
                put_u64(&mut b, *req);
            }
            Frame::AmoResp { req, old } => {
                b.push(T_AMO_RESP);
                put_u64(&mut b, *req);
                put_u64(&mut b, *old);
            }
            Frame::AmBatch { src, dst, ack, ops } => {
                b.push(T_AM_BATCH);
                put_u32(&mut b, *src);
                put_u32(&mut b, *dst);
                put_u64(&mut b, *ack);
                put_u32(&mut b, ops.len() as u32);
                for op in ops {
                    op.encode(&mut b);
                }
            }
            Frame::FlagAdd {
                src,
                dst,
                flag,
                delta,
            } => {
                b.push(T_FLAG_ADD);
                put_u32(&mut b, *src);
                put_u32(&mut b, *dst);
                put_u64(&mut b, *flag);
                put_u64(&mut b, *delta);
            }
            Frame::Heartbeat { node, stats } => {
                b.push(T_HEARTBEAT);
                put_u32(&mut b, *node);
                put_stats(&mut b, stats);
            }
            Frame::Bye { node } => {
                b.push(T_BYE);
                put_u32(&mut b, *node);
            }
            Frame::Rejoin {
                node,
                generation,
                addr,
                magic,
                shm,
            } => {
                b.push(T_REJOIN);
                put_u32(&mut b, *node);
                put_u64(&mut b, *generation);
                put_bytes(&mut b, addr.as_bytes());
                put_u32(&mut b, *magic);
                put_bytes(&mut b, shm.as_bytes());
            }
            Frame::RecoverBarrier {
                node,
                round,
                generation,
            } => {
                b.push(T_RECOVER_BARRIER);
                put_u32(&mut b, *node);
                put_u64(&mut b, *round);
                put_u64(&mut b, *generation);
            }
            Frame::Hello { node, addr, magic } => {
                b.push(T_HELLO);
                put_u32(&mut b, *node);
                put_bytes(&mut b, addr.as_bytes());
                put_u32(&mut b, *magic);
            }
            Frame::Peers { addrs } => {
                b.push(T_PEERS);
                put_u32(&mut b, addrs.len() as u32);
                for a in addrs {
                    put_bytes(&mut b, a.as_bytes());
                }
            }
            Frame::Done { node, results } => {
                b.push(T_DONE);
                put_u32(&mut b, *node);
                put_u32(&mut b, results.len() as u32);
                for (img, val) in results {
                    put_u32(&mut b, *img);
                    put_u64(&mut b, *val);
                }
            }
            Frame::Abort { msg } => {
                b.push(T_ABORT);
                put_bytes(&mut b, msg.as_bytes());
            }
            Frame::Telemetry { node, payload } => {
                b.push(T_TELEMETRY);
                put_u32(&mut b, *node);
                put_bytes(&mut b, payload);
            }
        }
        let body_len = (b.len() - 4) as u32;
        b[..4].copy_from_slice(&body_len.to_le_bytes());
        b
    }

    /// Decode a frame body (everything after the length prefix).
    pub fn decode(body: &[u8]) -> io::Result<Frame> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let (&tag, rest) = body.split_first().ok_or_else(|| bad("empty frame"))?;
        let mut c = Cursor { buf: rest, pos: 0 };
        let f = match tag {
            T_OPEN => Frame::Open {
                node: c.u32()?,
                magic: c.u32()?,
                shm: c.string()?,
            },
            T_PUT => Frame::Put {
                src: c.u32()?,
                dst: c.u32()?,
                seg: c.u64()?,
                off: c.u64()?,
                ack: c.u64()?,
                data: c.bytes()?,
            },
            T_PUT_ACK => Frame::PutAck { ack: c.u64()? },
            T_GET => Frame::Get {
                src: c.u32()?,
                dst: c.u32()?,
                seg: c.u64()?,
                off: c.u64()?,
                len: c.u32()?,
                req: c.u64()?,
            },
            T_GET_RESP => Frame::GetResp {
                req: c.u64()?,
                data: c.bytes()?,
            },
            T_AMO_FADD => Frame::AmoFadd {
                src: c.u32()?,
                dst: c.u32()?,
                seg: c.u64()?,
                off: c.u64()?,
                delta: c.u64()?,
                req: c.u64()?,
            },
            T_AMO_CAS => Frame::AmoCas {
                src: c.u32()?,
                dst: c.u32()?,
                seg: c.u64()?,
                off: c.u64()?,
                expected: c.u64()?,
                new: c.u64()?,
                req: c.u64()?,
            },
            T_AMO_RESP => Frame::AmoResp {
                req: c.u64()?,
                old: c.u64()?,
            },
            T_AM_BATCH => {
                let src = c.u32()?;
                let dst = c.u32()?;
                let ack = c.u64()?;
                let n = c.u32()? as usize;
                // A batch is bounded by the batcher's op budget; a count in
                // the millions means a corrupted header, not real traffic.
                if n > 1 << 20 {
                    return Err(bad("absurd am op count"));
                }
                let mut ops = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ops.push(AmOp::decode(&mut c)?);
                }
                Frame::AmBatch { src, dst, ack, ops }
            }
            T_FLAG_ADD => Frame::FlagAdd {
                src: c.u32()?,
                dst: c.u32()?,
                flag: c.u64()?,
                delta: c.u64()?,
            },
            T_HEARTBEAT => Frame::Heartbeat {
                node: c.u32()?,
                stats: c.stats()?,
            },
            T_BYE => Frame::Bye { node: c.u32()? },
            T_REJOIN => Frame::Rejoin {
                node: c.u32()?,
                generation: c.u64()?,
                addr: c.string()?,
                magic: c.u32()?,
                shm: c.string()?,
            },
            T_RECOVER_BARRIER => Frame::RecoverBarrier {
                node: c.u32()?,
                round: c.u64()?,
                generation: c.u64()?,
            },
            T_HELLO => Frame::Hello {
                node: c.u32()?,
                addr: c.string()?,
                magic: c.u32()?,
            },
            T_PEERS => {
                let n = c.u32()? as usize;
                if n > 1 << 16 {
                    return Err(bad("absurd peer count"));
                }
                let mut addrs = Vec::with_capacity(n);
                for _ in 0..n {
                    addrs.push(c.string()?);
                }
                Frame::Peers { addrs }
            }
            T_DONE => {
                let node = c.u32()?;
                let n = c.u32()? as usize;
                if n > 1 << 24 {
                    return Err(bad("absurd result count"));
                }
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    results.push((c.u32()?, c.u64()?));
                }
                Frame::Done { node, results }
            }
            T_ABORT => Frame::Abort { msg: c.string()? },
            T_TELEMETRY => Frame::Telemetry {
                node: c.u32()?,
                payload: c.bytes()?,
            },
            _ => return Err(bad("unknown frame tag")),
        };
        if c.pos != rest.len() {
            return Err(bad("trailing bytes in frame body"));
        }
        Ok(f)
    }
}

/// Write one frame; returns the wire bytes written (for stats).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<usize> {
    let bytes = frame.encode();
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

/// Read one frame; returns the frame and the wire bytes consumed.
///
/// A read timeout surfaces as `Err` with kind `WouldBlock`/`TimedOut` when
/// it hits *between* frames; mid-frame timeouts keep retrying the partial
/// read until the frame completes (frames are small relative to the
/// configured timeouts, so a genuinely dead peer still trips the caller's
/// liveness checks).
pub fn read_frame<R: Read>(r: &mut BufReader<R>) -> io::Result<(Frame, usize)> {
    let (body, n) = read_frame_body(r)?;
    Ok((Frame::decode(&body)?, n))
}

/// A frame read by [`read_frame_direct`]: `Put` payloads stay borrowed
/// inside the read buffer so the ingress loop can copy them straight into
/// the destination segment — one copy, no intermediate heap `Vec` (the
/// zero-staging path large cross-node puts ride when the destination
/// window lives in a shared-memory segment).
pub enum RawFrame {
    /// A `Put`; `buf[payload..]` is the payload, in place.
    Put {
        /// Issuing image (global 0-based rank).
        src: u32,
        /// Target image (must be hosted by the receiver).
        dst: u32,
        /// Target segment id.
        seg: u64,
        /// Byte offset within the segment.
        off: u64,
        /// Completion-ack cookie (0 = no ack requested).
        ack: u64,
        /// The whole frame body; the payload is its tail.
        buf: Vec<u8>,
        /// Byte index where the payload starts in `buf`.
        payload: usize,
    },
    /// Any other frame, fully decoded.
    Other(Frame),
}

/// Like [`read_frame`], but leaves `Put` payloads in place (see
/// [`RawFrame`]). Identical timeout semantics.
pub fn read_frame_direct<R: Read>(r: &mut BufReader<R>) -> io::Result<(RawFrame, usize)> {
    let (body, n) = read_frame_body(r)?;
    if body.first() == Some(&T_PUT) {
        let mut c = Cursor::new(&body[1..]);
        let (src, dst) = (c.u32()?, c.u32()?);
        let (seg, off, ack) = (c.u64()?, c.u64()?, c.u64()?);
        let len = c.u32()? as usize;
        let payload = 1 + c.pos;
        if payload + len != body.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "put payload length mismatch",
            ));
        }
        return Ok((
            RawFrame::Put {
                src,
                dst,
                seg,
                off,
                ack,
                buf: body,
                payload,
            },
            n,
        ));
    }
    Ok((RawFrame::Other(Frame::decode(&body)?), n))
}

/// Read one length-prefixed frame body; returns the body and the wire
/// bytes consumed (body + prefix).
fn read_frame_body<R: Read>(r: &mut BufReader<R>) -> io::Result<(Vec<u8>, usize)> {
    // Fill `buf[filled..]`, retrying timeouts once any byte of the frame
    // has been consumed (a plain `read_exact` could drop partial bytes on
    // a timeout and desynchronize the stream).
    fn fill<R: Read>(r: &mut BufReader<R>, buf: &mut [u8], mut filled: usize) -> io::Result<()> {
        while filled < buf.len() {
            match r.read(&mut buf[filled..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof mid-frame",
                    ))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Partial frame: the rest is on the wire; keep going.
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    let mut len4 = [0u8; 4];
    // The first byte decides idle-vs-mid-frame: a timeout with nothing
    // consumed surfaces to the caller (its poll loop), a timeout after
    // that keeps collecting.
    let first = loop {
        match r.read(&mut len4[..1]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed",
                ))
            }
            Ok(_) => break 1,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    };
    fill(r, &mut len4, first)?;
    let len = u32::from_le_bytes(len4) as usize;
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} out of range"),
        ));
    }
    let mut body = vec![0u8; len];
    fill(r, &mut body, 0)?;
    Ok((body, 4 + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let enc = f.encode();
        let len = u32::from_le_bytes(enc[..4].try_into().unwrap()) as usize;
        assert_eq!(len, enc.len() - 4);
        assert_eq!(Frame::decode(&enc[4..]).unwrap(), f);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Open {
            node: 3,
            magic: WIRE_MAGIC,
            shm: "/dev/shm/caf-shm-1-0-g0-r3".into(),
        });
        roundtrip(Frame::Open {
            node: 0,
            magic: WIRE_MAGIC,
            shm: String::new(),
        });
        roundtrip(Frame::Put {
            src: 1,
            dst: 9,
            seg: 2,
            off: 4096,
            ack: 77,
            data: vec![1, 2, 3, 4, 5],
        });
        roundtrip(Frame::PutAck { ack: 77 });
        roundtrip(Frame::Get {
            src: 0,
            dst: 5,
            seg: 1,
            off: 8,
            len: 64,
            req: 12,
        });
        roundtrip(Frame::GetResp {
            req: 12,
            data: vec![0; 64],
        });
        roundtrip(Frame::AmoFadd {
            src: 2,
            dst: 3,
            seg: 0,
            off: 16,
            delta: 5,
            req: 9,
        });
        roundtrip(Frame::AmoCas {
            src: 2,
            dst: 3,
            seg: 0,
            off: 16,
            expected: 1,
            new: 2,
            req: 10,
        });
        roundtrip(Frame::AmoResp { req: 10, old: 1 });
        roundtrip(Frame::FlagAdd {
            src: 7,
            dst: 0,
            flag: 3,
            delta: 1,
        });
        roundtrip(Frame::AmBatch {
            src: 2,
            dst: 6,
            ack: 99,
            ops: vec![
                AmOp::Put {
                    seg: crate::SegmentId(1),
                    off: 128,
                    data: vec![7; 16],
                },
                AmOp::FlagAdd {
                    flag: crate::FlagId(3),
                    delta: 2,
                },
                AmOp::AmoAdd {
                    seg: crate::SegmentId(0),
                    off: 8,
                    delta: 5,
                },
                AmOp::PutFlag {
                    seg: crate::SegmentId(2),
                    off: 0,
                    data: vec![1, 2, 3],
                    flag: crate::FlagId(4),
                    delta: 1,
                },
            ],
        });
        roundtrip(Frame::AmBatch {
            src: 0,
            dst: 1,
            ack: 0,
            ops: vec![],
        });
        roundtrip(Frame::Heartbeat {
            node: 1,
            stats: StatsSnapshot {
                puts_inter: 7,
                bytes_inter: 4096,
                wire_frames_tx: 12,
                wire_reconnects: 1,
                ..StatsSnapshot::default()
            },
        });
        roundtrip(Frame::Bye { node: 0 });
        roundtrip(Frame::Rejoin {
            node: 1,
            generation: 3,
            addr: "uds:/tmp/reborn.sock".into(),
            magic: WIRE_MAGIC,
            shm: "/dev/shm/caf-shm-1-0-g3-r1".into(),
        });
        roundtrip(Frame::RecoverBarrier {
            node: 2,
            round: 2,
            generation: 3,
        });
        roundtrip(Frame::Hello {
            node: 2,
            addr: "uds:/tmp/x.sock".into(),
            magic: WIRE_MAGIC,
        });
        roundtrip(Frame::Peers {
            addrs: vec!["uds:/tmp/a".into(), "tcp:127.0.0.1:4000".into()],
        });
        roundtrip(Frame::Done {
            node: 1,
            results: vec![(4, 0xdead_beef), (5, 42)],
        });
        roundtrip(Frame::Abort {
            msg: "node 2 died".into(),
        });
        roundtrip(Frame::Telemetry {
            node: 3,
            payload: vec![0xCA, 0xF0, 1, 2, 3],
        });
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Frame::decode(&[]).is_err());
        assert!(Frame::decode(&[200]).is_err());
        // Truncated put.
        assert!(Frame::decode(&[T_PUT, 1, 0, 0]).is_err());
        // Trailing junk.
        let mut enc = Frame::PutAck { ack: 1 }.encode();
        enc.push(0xFF);
        assert!(Frame::decode(&enc[4..]).is_err());
    }

    #[test]
    fn corrupted_am_batches_fail_as_invalid_data_not_panics() {
        let base = Frame::AmBatch {
            src: 1,
            dst: 2,
            ack: 7,
            ops: vec![
                AmOp::Put {
                    seg: crate::SegmentId(0),
                    off: 64,
                    data: vec![9; 8],
                },
                AmOp::FlagAdd {
                    flag: crate::FlagId(2),
                    delta: 1,
                },
            ],
        };
        let enc = base.encode();
        let body = &enc[4..];

        let expect_invalid = |bytes: &[u8]| {
            let err = Frame::decode(bytes).expect_err("corrupt batch must not decode");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        };

        // Op count inflated far past the body (absurd-count guard).
        let mut bad = body.to_vec();
        bad[17..21].copy_from_slice(&u32::MAX.to_le_bytes());
        expect_invalid(&bad);

        // Op count claims one more op than the body carries.
        let mut bad = body.to_vec();
        bad[17..21].copy_from_slice(&3u32.to_le_bytes());
        expect_invalid(&bad);

        // Truncations at every byte boundary: header, mid-op, mid-payload.
        for cut in 1..body.len() {
            assert!(
                Frame::decode(&body[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }

        // Payload length field of the first op inflated (absurd-payload
        // guard inside AmOp::decode). The put's len field sits after the
        // frame header (4+4+8+4 = 20 bytes) plus op tag + seg + off.
        let mut bad = body.to_vec();
        let len_at = 21 + 1 + 8 + 8;
        bad[len_at..len_at + 4].copy_from_slice(&(1u32 << 30).to_le_bytes());
        expect_invalid(&bad);

        // Unknown op tag inside the batch.
        let mut bad = body.to_vec();
        bad[21] = 0xEE;
        expect_invalid(&bad);

        // Single corrupted bytes through the header region must never
        // panic (they may decode to a different-but-valid frame; the
        // receiver's host/bounds checks own those).
        for i in 0..body.len().min(32) {
            let mut fuzz = body.to_vec();
            fuzz[i] ^= 0xA5;
            let _ = Frame::decode(&fuzz);
        }
    }

    #[test]
    fn addr_parse_display_roundtrip() {
        for s in ["uds:/tmp/caf.sock", "tcp:127.0.0.1:9000"] {
            let a: Addr = s.parse().unwrap();
            assert_eq!(a.to_string(), s);
        }
        assert!("zmq:whatever".parse::<Addr>().is_err());
        assert!("tcp:notanaddr".parse::<Addr>().is_err());
    }

    #[test]
    fn write_read_roundtrip_over_uds() {
        let listener = Listener::bind(Transport::Uds).unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut s = listener.accept().unwrap();
            write_frame(
                &mut s,
                &Frame::FlagAdd {
                    src: 0,
                    dst: 1,
                    flag: 2,
                    delta: 3,
                },
            )
            .unwrap()
        });
        let s = Stream::connect(&addr).unwrap();
        let mut r = BufReader::new(s);
        let (frame, n) = read_frame(&mut r).unwrap();
        assert_eq!(
            frame,
            Frame::FlagAdd {
                src: 0,
                dst: 1,
                flag: 2,
                delta: 3
            }
        );
        assert_eq!(n, t.join().unwrap());
    }

    #[test]
    fn direct_read_leaves_put_payload_in_place() {
        let listener = Listener::bind(Transport::Uds).unwrap();
        let addr = listener.local_addr().unwrap();
        let put = Frame::Put {
            src: 3,
            dst: 5,
            seg: 1,
            off: 256,
            ack: 42,
            data: (0..=99).collect(),
        };
        let p2 = put.clone();
        let t = std::thread::spawn(move || {
            let mut s = listener.accept().unwrap();
            let mut n = write_frame(&mut s, &p2).unwrap();
            n += write_frame(&mut s, &Frame::PutAck { ack: 42 }).unwrap();
            n
        });
        let s = Stream::connect(&addr).unwrap();
        let mut r = BufReader::new(s);
        let (raw, n1) = read_frame_direct(&mut r).unwrap();
        match raw {
            RawFrame::Put {
                src,
                dst,
                seg,
                off,
                ack,
                buf,
                payload,
            } => {
                assert_eq!((src, dst, seg, off, ack), (3, 5, 1, 256, 42));
                let want: Vec<u8> = (0..=99).collect();
                assert_eq!(&buf[payload..], &want[..]);
            }
            RawFrame::Other(f) => panic!("put decoded as {f:?}"),
        }
        let (raw, n2) = read_frame_direct(&mut r).unwrap();
        match raw {
            RawFrame::Other(f) => assert_eq!(f, Frame::PutAck { ack: 42 }),
            RawFrame::Put { .. } => panic!("ack decoded as put"),
        }
        assert_eq!(n1 + n2, t.join().unwrap(), "byte accounting matches");
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let listener = Listener::bind(Transport::Uds).unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut s = listener.accept().unwrap();
            s.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        });
        let s = Stream::connect(&addr).unwrap();
        let mut r = BufReader::new(s);
        assert!(read_frame(&mut r).is_err());
        t.join().unwrap();
    }
}
