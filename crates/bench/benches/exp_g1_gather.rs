//! EXP-G1 (extension) — the paper's methodology applied to gather/scatter.
//!
//! The paper treats barrier, all-to-all reduction, and one-to-all
//! broadcast; gather and scatter are the natural next collectives (and
//! what OpenSHMEM teams provide). The two-level variants route one message
//! per node through the leaders; this harness measures what that buys at
//! the paper's scales, completing the ablation story of §IV.

use caf_bench::{print_cost_preamble, scaled};
use caf_fabric::{SimConfig, SimFabric};
use caf_microbench::{report, Table};
use caf_runtime::{run_on_fabric, CollectiveConfig, GatherAlgo};
use caf_topology::{presets, ImageMap, Placement};

fn latency(images: usize, per_node: usize, elems: usize, algo: GatherAlgo, iters: usize) -> f64 {
    let stack = match algo {
        GatherAlgo::TwoLevel => presets::stacks::UHCAF,
        _ => presets::stacks::UHCAF_FLAT,
    };
    let map = ImageMap::new(presets::whale(), images, &Placement::Block { per_node });
    let fabric = SimFabric::new(
        map,
        SimConfig {
            cost: presets::whale_cost(),
            overheads: stack,
            ..SimConfig::default()
        },
    );
    let cfg = CollectiveConfig {
        gather: algo,
        ..CollectiveConfig::default()
    };
    let spans = run_on_fabric(fabric, cfg, move |img| {
        let mine = vec![img.this_image() as u64; elems];
        let mut out = vec![0u64; elems];
        for w in 0..3 {
            let root = w % img.num_images() + 1;
            let g = img.co_gather(&mine, root);
            let all = g.map(|v| v.iter().map(|x| x * 2).collect::<Vec<_>>());
            img.co_scatter(all.as_deref(), &mut out, root);
        }
        img.sync_all();
        let t0 = img.now_ns();
        for i in 0..iters {
            let root = i % img.num_images() + 1;
            let g = img.co_gather(&mine, root);
            let all = g.map(|v| v.to_vec());
            img.co_scatter(all.as_deref(), &mut out, root);
        }
        (t0, img.now_ns())
    });
    let start = spans.iter().map(|s| s.0).min().expect("images");
    let end = spans.iter().map(|s| s.1).max().expect("images");
    (end - start) as f64 / iters as f64
}

fn main() {
    print_cost_preamble("EXP-G1");
    let iters = scaled(8, 3);
    let sizes: Vec<usize> = if caf_bench::quick_mode() {
        vec![16, 64]
    } else {
        vec![16, 64, 128, 256]
    };
    let mut t = Table::new(
        "EXP-G1 (extension): gather+scatter round, 8 elements, 8 images/node (modeled us)",
        &["images(nodes)", "two-level", "flat-linear", "speedup"],
    );
    for &n in &sizes {
        let two = latency(n, 8, 8, GatherAlgo::TwoLevel, iters);
        let flat = latency(n, 8, 8, GatherAlgo::FlatLinear, iters);
        t.row(&[
            format!("{}({})", n, n / 8),
            report::us(two),
            report::us(flat),
            report::speedup(flat, two),
        ]);
    }
    t.note("one inter-node message per node (leaders) vs one per image (flat)");
    t.print();
}
