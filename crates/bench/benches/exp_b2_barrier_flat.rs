//! EXP-B2 — barrier latency with a **flat hierarchy** (1 image/node), §V-A:
//!
//! > "with one image per node, [TDLB] performs as well as a pure
//! > dissemination algorithm in the case of a flat hierarchy"
//!
//! TDLB must degenerate gracefully: every image is its own node leader, so
//! stages 1 and 3 vanish and stage 2 *is* the dissemination barrier. The
//! ratio column should hover at 1.0x.

use caf_bench::{print_cost_preamble, scaled};
use caf_microbench::{barrier_latency, report, MicroConfig, Table};
use caf_runtime::{BarrierAlgo, CollectiveConfig};
use caf_topology::Placement;

fn main() {
    print_cost_preamble("EXP-B2");
    let sizes: Vec<usize> = if caf_bench::quick_mode() {
        vec![4, 16]
    } else {
        vec![2, 4, 8, 16, 32, 44]
    };
    let iters = scaled(10, 3);

    let mut table = Table::new(
        "EXP-B2: barrier latency, 1 image/node (modeled us)",
        &["images(nodes)", "TDLB", "dissemination", "ratio"],
    );

    let mut worst: f64 = 0.0;
    for &n in &sizes {
        let run = |algo| {
            let mut mc = MicroConfig::whale(n, 1).with_collectives(CollectiveConfig {
                barrier: algo,
                ..CollectiveConfig::default()
            });
            mc.placement = Placement::Cyclic;
            mc.iters = iters;
            barrier_latency(&mc).ns_per_op
        };
        let tdlb = run(BarrierAlgo::Tdlb);
        let dissem = run(BarrierAlgo::Dissemination);
        let ratio = tdlb / dissem;
        worst = worst.max((ratio - 1.0).abs());
        table.row(&[
            format!("{n}({n})"),
            report::us(tdlb),
            report::us(dissem),
            format!("{ratio:.3}x"),
        ]);
    }
    table.note(format!(
        "max |ratio-1| = {worst:.3} (paper: TDLB performs as well as pure \
         dissemination on a flat hierarchy)"
    ));
    table.print();
}
