//! Property test: for arbitrary seeds and algorithm-matrix cells, a chaos
//! schedule of the conformance program agrees with the default-schedule
//! oracle. Any regression seed proptest records in
//! `proptest-regressions/` names a real schedule divergence — commit it
//! with a comment describing the schedule it reproduces.

use caf_check::{algo_matrix, check_program, conformance, CheckOptions, Program, Scenario};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn chaos_schedules_agree_with_the_oracle(
        seed in 0u64..1_000_000,
        cell in 0usize..19,
    ) {
        let matrix = algo_matrix();
        let (name, algo) = &matrix[cell % matrix.len()];
        let prog: Program = Arc::new(conformance);
        let out = check_program(
            &Scenario::tiny(),
            name,
            *algo,
            &prog,
            &CheckOptions {
                seeds: vec![seed],
                faults: seed % 3 == 0,
                threads: false,
                trace_window: 2,
            },
        );
        prop_assert!(
            out.is_ok(),
            "divergence: {}",
            out.err().map(|f| f.render()).unwrap_or_default()
        );
    }
}
