//! One-to-all broadcast algorithms: linear, flat binomial tree, the
//! paper's two-level scheme (binomial over node leaders — with the root
//! standing in as its node's leader — then an intra-node linear fan-out),
//! and a chunked pipelined two-level scheme for large payloads: K-byte
//! chunks stream down a *pipelined binary tree* of node leaders with
//! nonblocking puts, and each leader fans a chunk out through shared
//! memory while its NIC forwards it downstream — the inter-node stage and
//! the intranode fan-out overlap instead of serializing.
//!
//! # Flow control: three waves
//!
//! A one-sided broadcast needs more than parity double-buffering, because
//! the **root rotates** call to call: the root of episode e+2 only needs
//! episode e+1's *data* to proceed, so a chain of fast roots can outrun a
//! slow receiver by any number of episodes and overwrite a payload slot it
//! has not read yet. Every algorithm here therefore runs three waves:
//!
//! 1. **data** down the tree (payload put + `B_ARRIVE` notification),
//! 2. **ack** back up (`B_ACK`, collected subtree-by-subtree),
//! 3. **release** down again (`B_DONE`), sent once the root holds every
//!    ack; receivers return only after their release.
//!
//! Wave 3 makes an episode's completion globally visible: any image
//! *starting* episode e has finished e−1, whose release certifies that all
//! of e−1's payloads (and a fortiori e−2's, whose parity slot e reuses)
//! were consumed everywhere. Because roots change, the per-image
//! expectations (`bcast_arrived`, `bcast_acks`, `bcast_released`) are
//! cumulative counters rather than the bare episode number.

use crate::comm::{flag, TeamComm};
use crate::config::BcastAlgo;
use crate::util::{binomial_children, binomial_parent};
use crate::value::CoValue;
use caf_trace::{Event, EventKind, Level};

/// Stable trace operand for a broadcast algorithm (`Bcast` event `a`).
fn algo_code(a: BcastAlgo) -> u64 {
    match a {
        BcastAlgo::FlatLinear => 1,
        BcastAlgo::FlatBinomial => 2,
        BcastAlgo::TwoLevel => 3,
        BcastAlgo::TwoLevelPipelined => 4,
        BcastAlgo::Auto => 0,
    }
}

/// Broadcast `buf` from team rank `root`, picking the algorithm by
/// (hierarchy × payload size) — all members see the same length, so they
/// agree on the choice.
pub(crate) fn broadcast<T: CoValue>(comm: &mut TeamComm, buf: &mut [T], root: usize) {
    let algo = comm.bcast_algo_for(buf.len() * T::SIZE);
    broadcast_using(comm, buf, root, algo);
}

/// Broadcast with an explicit algorithm (used by `FlatBinomial` allreduce,
/// which embeds a flat broadcast regardless of the team's bcast choice).
pub(crate) fn broadcast_using<T: CoValue>(
    comm: &mut TeamComm,
    buf: &mut [T],
    root: usize,
    algo: BcastAlgo,
) {
    assert!(root < comm.size(), "broadcast root {root} out of team");
    comm.epochs.bcast += 1;
    if comm.size() == 1 {
        return;
    }
    comm.ensure_scratch(buf.len() * T::SIZE);
    let par = (comm.epochs.bcast % 2) as usize;
    let e = comm.epochs.bcast;
    let t0 = comm.trace_now();
    match algo {
        BcastAlgo::FlatLinear => linear(comm, buf, root, par),
        BcastAlgo::FlatBinomial => binomial(comm, buf, root, par),
        BcastAlgo::TwoLevel => two_level(comm, buf, root, par),
        BcastAlgo::TwoLevelPipelined => two_level_pipelined(comm, buf, root, par),
        BcastAlgo::Auto => unreachable!("Auto resolved per call"),
    }
    comm.trace(
        Event::span(EventKind::Bcast, t0, comm.trace_now().saturating_sub(t0))
            .a(algo_code(algo))
            .b(comm.trace_tag())
            .c(e)
            .d((buf.len() * T::SIZE) as u64),
    );
}

/// Receiver-side wait for the episode-completion release (wave 3).
fn await_release(comm: &mut TeamComm) {
    comm.epochs.bcast_released += 1;
    comm.wait_flag(flag::B_DONE, comm.epochs.bcast_released);
}

/// Root puts the payload to every member directly: n−1 sends serialized at
/// the root — the worst 1-level strawman, kept as a measurable baseline.
fn linear<T: CoValue>(comm: &mut TeamComm, buf: &mut [T], root: usize, par: usize) {
    let n = comm.size();
    if comm.rank == root {
        let off = comm.sl_bcast(par);
        for j in 0..n {
            if j != root {
                comm.send_values(j, off, buf);
                comm.add_flag(j, flag::B_ARRIVE, 1);
            }
        }
        comm.epochs.bcast_acks += n as u64 - 1;
        comm.wait_flag(flag::B_ACK, comm.epochs.bcast_acks);
        for j in 0..n {
            if j != root {
                comm.add_flag(j, flag::B_DONE, 1);
            }
        }
    } else {
        comm.epochs.bcast_arrived += 1;
        comm.wait_flag(flag::B_ARRIVE, comm.epochs.bcast_arrived);
        let off = comm.sl_bcast(par);
        comm.load_from_scratch(off, buf);
        comm.add_flag(root, flag::B_ACK, 1);
        await_release(comm);
    }
}

/// Flat binomial tree over virtual ranks `(rank − root) mod n` — the
/// 1-level baseline with log n depth. The release wave reuses the same
/// tree.
fn binomial<T: CoValue>(comm: &mut TeamComm, buf: &mut [T], root: usize, par: usize) {
    let n = comm.size();
    let v = (comm.rank + n - root) % n;
    let to_rank = |vr: usize| (vr + root) % n;

    if v != 0 {
        comm.epochs.bcast_arrived += 1;
        comm.wait_flag(flag::B_ARRIVE, comm.epochs.bcast_arrived);
        let off = comm.sl_bcast(par);
        comm.load_from_scratch(off, buf);
    }
    let children = binomial_children(v, n);
    for &c in &children {
        let off = comm.sl_bcast(par);
        comm.send_values(to_rank(c), off, buf);
        comm.add_flag(to_rank(c), flag::B_ARRIVE, 1);
    }
    if !children.is_empty() {
        comm.epochs.bcast_acks += children.len() as u64;
        comm.wait_flag(flag::B_ACK, comm.epochs.bcast_acks);
    }
    if v != 0 {
        comm.add_flag(to_rank(binomial_parent(v)), flag::B_ACK, 1);
        await_release(comm);
    }
    // Release wave: forward down the same tree after my own release (the
    // root forwards right after collecting all acks).
    for &c in &children {
        comm.add_flag(to_rank(c), flag::B_DONE, 1);
    }
}

/// The paper's two-level broadcast: a binomial tree across *effective node
/// leaders* (the root acts as leader of its own node), then a linear
/// shared-memory fan-out within each node; acks and releases run the same
/// two-level shape.
fn two_level<T: CoValue>(comm: &mut TeamComm, buf: &mut [T], root: usize, par: usize) {
    let hier = comm.hier.clone();
    let root_set = hier.leader_index_of(root);
    let my_set = hier.leader_index_of(comm.rank);
    let l = hier.n_nodes();
    let eff_leader_of = |set_idx: usize| -> usize {
        if set_idx == root_set {
            root
        } else {
            hier.sets()[set_idx].leader
        }
    };
    let el = eff_leader_of(my_set);

    if comm.rank != el {
        // Plain member: data from my effective leader, ack it, await
        // release (also via my leader).
        comm.epochs.bcast_arrived += 1;
        comm.wait_flag(flag::B_ARRIVE, comm.epochs.bcast_arrived);
        let off = comm.sl_bcast(par);
        comm.load_from_scratch(off, buf);
        comm.add_flag(el, flag::B_ACK, 1);
        await_release(comm);
        return;
    }

    // Effective leader: stage 1, binomial over the leader set.
    let tag = comm.trace_tag();
    let e = comm.epochs.bcast;
    let t0 = comm.trace_now();
    let lv = (my_set + l - root_set) % l;
    let leader_rank = |lvr: usize| eff_leader_of((lvr + root_set) % l);
    if lv != 0 {
        comm.epochs.bcast_arrived += 1;
        comm.wait_flag(flag::B_ARRIVE, comm.epochs.bcast_arrived);
        let off = comm.sl_bcast(par);
        comm.load_from_scratch(off, buf);
    }
    let lchildren = binomial_children(lv, l);
    for &c in &lchildren {
        let off = comm.sl_bcast(par);
        comm.send_values(leader_rank(c), off, buf);
        comm.add_flag(leader_rank(c), flag::B_ARRIVE, 1);
    }
    comm.trace(
        Event::span(
            EventKind::BcastStage,
            t0,
            comm.trace_now().saturating_sub(t0),
        )
        .a(1)
        .b(tag)
        .c(e)
        .level(Level::Inter),
    );

    // Stage 2: linear fan-out within my node.
    let t1 = comm.trace_now();
    let locals: Vec<usize> = hier.sets()[my_set]
        .ranks
        .iter()
        .copied()
        .filter(|&m| m != el)
        .collect();
    for &m in &locals {
        let off = comm.sl_bcast(par);
        comm.send_values(m, off, buf);
        comm.add_flag(m, flag::B_ARRIVE, 1);
    }
    comm.trace(
        Event::span(
            EventKind::BcastStage,
            t1,
            comm.trace_now().saturating_sub(t1),
        )
        .a(2)
        .b(tag)
        .c(e)
        .level(Level::Intra),
    );

    // Ack wave: wait for my subtree, ack my parent leader.
    let expected = (lchildren.len() + locals.len()) as u64;
    if expected > 0 {
        comm.epochs.bcast_acks += expected;
        comm.wait_flag(flag::B_ACK, comm.epochs.bcast_acks);
    }
    if lv != 0 {
        comm.add_flag(leader_rank(binomial_parent(lv)), flag::B_ACK, 1);
        await_release(comm);
    }
    // Release wave: down the leader tree and into my node.
    for &c in &lchildren {
        comm.add_flag(leader_rank(c), flag::B_DONE, 1);
    }
    for &m in &locals {
        comm.add_flag(m, flag::B_DONE, 1);
    }
}

/// Pipelined two-level broadcast for large payloads: the payload is cut
/// into policy-sized chunks and the leader stage is a *pipelined binary
/// tree* over the effective node leaders (heap-ordered by
/// `(set − root_set) mod l`), not a store-and-forward binomial tree.
/// With nonblocking puts each leader forwards chunk `c` to its (at most
/// two) children while its own NIC is still receiving chunk `c+1`, so for
/// payloads of many chunks the total time approaches one payload's NIC
/// time plus a `⌈log₂ l⌉`-deep fill term — instead of the binomial tree's
/// `log l × payload` store-and-forward time, and instead of the `l`-deep
/// fill a chain would pay (a chain halves per-chunk NIC load but its fill
/// dominates everything below multi-MiB payloads at 44 nodes). Two
/// children per chunk keep the NIC busy below the intranode fan-out time,
/// so the fan-out — which overlaps the inter-node transfer of the next
/// chunk — remains the steady-state bound. The intra-node fan-out of
/// chunk `c` overlaps the inter-node transfer of chunk `c+1`.
///
/// Flow control is the same three-wave scheme, with wave 1 counted *per
/// chunk*: every receiver has exactly one payload source per episode, and
/// the fabric orders a flag behind a prior put to the same target, so a
/// cumulative `B_ARRIVE` count identifies chunk boundaries without
/// tokens. Acks and releases stay per-episode.
fn two_level_pipelined<T: CoValue>(comm: &mut TeamComm, buf: &mut [T], root: usize, par: usize) {
    let hier = comm.hier.clone();
    let root_set = hier.leader_index_of(root);
    let my_set = hier.leader_index_of(comm.rank);
    let l = hier.n_nodes();
    let eff_leader_of = |set_idx: usize| -> usize {
        if set_idx == root_set {
            root
        } else {
            hier.sets()[set_idx].leader
        }
    };
    let el = eff_leader_of(my_set);

    let len = buf.len();
    let ce = comm.chunk_elems(T::SIZE);
    let nchunks = len.div_ceil(ce).max(1);
    let chunk = |c: usize| (c * ce, ((c + 1) * ce).min(len));
    let off = comm.sl_bcast(par);

    if comm.rank != el {
        // Plain member: consume each chunk as it lands, then ack once.
        for c in 0..nchunks {
            let (lo, hi) = chunk(c);
            comm.epochs.bcast_arrived += 1;
            comm.wait_flag(flag::B_ARRIVE, comm.epochs.bcast_arrived);
            comm.load_from_scratch(off + lo * T::SIZE, &mut buf[lo..hi]);
        }
        comm.add_flag(el, flag::B_ACK, 1);
        await_release(comm);
        return;
    }

    // Effective leader: heap position in the binary tree over leaders.
    let tag = comm.trace_tag();
    let e = comm.epochs.bcast;
    let t0 = comm.trace_now();
    let lv = (my_set + l - root_set) % l;
    let leader_rank = |lvr: usize| eff_leader_of((lvr + root_set) % l);
    let tree_children: Vec<usize> = [2 * lv + 1, 2 * lv + 2]
        .into_iter()
        .filter(|&c| c < l)
        .map(leader_rank)
        .collect();
    let locals: Vec<usize> = hier.sets()[my_set]
        .ranks
        .iter()
        .copied()
        .filter(|&m| m != el)
        .collect();

    for c in 0..nchunks {
        let (lo, hi) = chunk(c);
        if lv != 0 {
            comm.epochs.bcast_arrived += 1;
            comm.wait_flag(flag::B_ARRIVE, comm.epochs.bcast_arrived);
            comm.load_from_scratch(off + lo * T::SIZE, &mut buf[lo..hi]);
        }
        // Forward down the tree first — the nonblocking puts free this
        // CPU to run the local fan-out while the NIC streams the chunk.
        for &child in &tree_children {
            comm.send_values_nb(child, off + lo * T::SIZE, &buf[lo..hi]);
            comm.add_flag(child, flag::B_ARRIVE, 1);
        }
        for &m in &locals {
            comm.send_values_nb(m, off + lo * T::SIZE, &buf[lo..hi]);
            comm.add_flag(m, flag::B_ARRIVE, 1);
        }
    }
    comm.trace(
        Event::span(
            EventKind::BcastStage,
            t0,
            comm.trace_now().saturating_sub(t0),
        )
        .a(1)
        .b(tag)
        .c(e)
        .d(nchunks as u64)
        .level(Level::Inter),
    );

    // Ack wave: my tree children plus my locals, then my tree parent.
    let expected = (tree_children.len() + locals.len()) as u64;
    if expected > 0 {
        comm.epochs.bcast_acks += expected;
        comm.wait_flag(flag::B_ACK, comm.epochs.bcast_acks);
    }
    if lv != 0 {
        comm.add_flag(leader_rank((lv - 1) / 2), flag::B_ACK, 1);
        await_release(comm);
    }
    // Release wave: down the tree and into my node.
    for &child in &tree_children {
        comm.add_flag(child, flag::B_DONE, 1);
    }
    for &m in &locals {
        comm.add_flag(m, flag::B_DONE, 1);
    }
}
