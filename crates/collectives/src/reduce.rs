//! All-to-all reduction (allreduce) algorithms: flat recursive doubling,
//! flat binomial reduce-then-broadcast, and the paper's two-level scheme
//! (intra-node linear combine at each leader → recursive doubling among
//! leaders → intra-node release).
//!
//! # Flow control
//!
//! Data travels through per-round scratch slots, double-buffered by the
//! epoch's parity. An image can be at most one episode ahead of any image
//! it communicates with (allreduce is globally synchronizing), so parity
//! double-buffering suffices to prevent a sender's episode-`e+2` payload
//! from landing before the receiver consumed episode `e`: starting episode
//! `e+2` requires finishing `e+1`, which requires the receiver to have
//! *started* `e+1` and hence consumed all of `e`.

use crate::comm::{flag, TeamComm};
use crate::config::ReduceAlgo;
use crate::util::{ceil_log2, floor_pow2};
use crate::value::CoValue;
use caf_trace::{Event, EventKind, Level};

/// Stable trace operand for a reduction algorithm (`Reduce` event `a`).
fn algo_code(a: ReduceAlgo) -> u64 {
    match a {
        ReduceAlgo::FlatRecursiveDoubling => 1,
        ReduceAlgo::FlatBinomial => 2,
        ReduceAlgo::TwoLevel => 3,
        ReduceAlgo::Auto => 0,
    }
}

/// Element-wise allreduce of `buf` across the team. Every member must call
/// with the same `buf.len()` and an equivalent operation.
pub(crate) fn allreduce<T: CoValue>(comm: &mut TeamComm, buf: &mut [T], f: &impl Fn(T, T) -> T) {
    comm.epochs.reduce += 1;
    let e = comm.epochs.reduce;
    if comm.size() == 1 || buf.is_empty() {
        return;
    }
    comm.ensure_scratch(buf.len() * T::SIZE);
    let t0 = comm.trace_now();
    match comm.reduce_algo {
        ReduceAlgo::FlatRecursiveDoubling => {
            let all: Vec<usize> = (0..comm.size()).collect();
            rd_over(comm, &all, buf, f, e);
        }
        ReduceAlgo::FlatBinomial => flat_binomial(comm, buf, f, e),
        ReduceAlgo::TwoLevel => two_level(comm, buf, f, e),
        ReduceAlgo::Auto => unreachable!("Auto resolved at formation"),
    }
    comm.trace(
        Event::span(EventKind::Reduce, t0, comm.trace_now().saturating_sub(t0))
            .a(algo_code(comm.reduce_algo))
            .b(comm.trace_tag())
            .c(e)
            .d((buf.len() * T::SIZE) as u64),
    );
}

/// Recursive-doubling allreduce over an arbitrary participant list
/// (`parts[i]` = team rank), with the standard fold-in/fold-out handling of
/// non-power-of-two sizes: the `extras` (positions ≥ 2^⌊log₂L⌋) contribute
/// to a partner up front and receive the final result afterwards.
pub(crate) fn rd_over<T: CoValue>(
    comm: &mut TeamComm,
    parts: &[usize],
    buf: &mut [T],
    f: &impl Fn(T, T) -> T,
    e: u64,
) {
    let l = parts.len();
    if l <= 1 {
        return;
    }
    let pos = parts
        .iter()
        .position(|&r| r == comm.rank)
        .expect("caller participates in the reduction");
    let par = (e % 2) as usize;
    let p2 = floor_pow2(l);
    let extras = l - p2;

    if pos >= p2 {
        // Fold in: hand my contribution to my partner, collect the result.
        let partner = parts[pos - p2];
        let off = comm.sl_pre(par);
        comm.send_values(partner, off, buf);
        comm.add_flag(partner, flag::R_PRE, 1);
        comm.wait_flag(flag::R_POST, e);
        let off = comm.sl_post(par);
        comm.load_from_scratch(off, buf);
        return;
    }

    if pos < extras {
        comm.wait_flag(flag::R_PRE, e);
        let off = comm.sl_pre(par);
        comm.combine_from_scratch(off, buf, f);
    }

    // Main phase: hypercube exchange among the first p2 participants.
    let rounds = ceil_log2(p2);
    for k in 0..rounds {
        let partner = parts[pos ^ (1 << k)];
        let off = comm.sl_rd(k, par);
        comm.send_values(partner, off, buf);
        comm.add_flag(partner, comm.layout.r_arrive(k), 1);
        comm.wait_flag(comm.layout.r_arrive(k), e);
        comm.combine_from_scratch(off, buf, f);
    }

    if pos < extras {
        // Fold out: return the finished result to my extra.
        let extra = parts[pos + p2];
        let off = comm.sl_post(par);
        comm.send_values(extra, off, buf);
        comm.add_flag(extra, flag::R_POST, 1);
    }
}

/// Binomial-tree reduce to team rank 0, then a flat binomial broadcast of
/// the result. A classic 1-level baseline with lower bandwidth than
/// recursive doubling but a root hot-spot.
fn flat_binomial<T: CoValue>(comm: &mut TeamComm, buf: &mut [T], f: &impl Fn(T, T) -> T, e: u64) {
    let n = comm.size();
    let v = comm.rank;
    let par = (e % 2) as usize;
    let rounds = ceil_log2(n);
    for k in 0..rounds {
        if (v >> k) & 1 == 1 {
            // Send my partial to the parent and retire from the gather.
            let parent = v & !(1 << k);
            let off = comm.sl_rd(k, par);
            comm.send_values(parent, off, buf);
            comm.add_flag(parent, comm.layout.r_arrive(k), 1);
            break;
        }
        let child = v | (1 << k);
        if child < n {
            comm.wait_flag(comm.layout.r_arrive(k), e);
            let off = comm.sl_rd(k, par);
            comm.combine_from_scratch(off, buf, f);
        }
    }
    // Everyone (root included) picks up the result through the broadcast,
    // whose full-ack flow control also fences the rd slots for reuse.
    crate::bcast::broadcast_using(comm, buf, 0, crate::config::BcastAlgo::FlatBinomial);
}

/// The paper's two-level reduction (§IV applied to all-to-all reduction):
/// slaves deposit contributions at their node leader (shared-memory
/// friendly linear gather), leaders run recursive doubling across nodes,
/// leaders release results to their intranode sets.
fn two_level<T: CoValue>(comm: &mut TeamComm, buf: &mut [T], f: &impl Fn(T, T) -> T, e: u64) {
    let hier = comm.hier.clone();
    let set = hier.set_for(comm.rank);
    let leader = set.leader;
    let par = (e % 2) as usize;

    if comm.rank != leader {
        let pos = set
            .ranks
            .iter()
            .position(|&r| r == comm.rank)
            .expect("member of own set");
        let off = comm.sl_gather(pos, par);
        comm.send_values(leader, off, buf);
        comm.add_flag(leader, flag::R_COUNTER, 1);
        comm.wait_flag(flag::R_RELEASE, e);
        let off = comm.sl_release(par);
        comm.load_from_scratch(off, buf);
        return;
    }

    // Leader: linear gather of the intranode set.
    let tag = comm.trace_tag();
    let t0 = comm.trace_now();
    let slaves = set.len() as u64 - 1;
    if slaves > 0 {
        comm.wait_flag(flag::R_COUNTER, slaves * e);
        let positions: Vec<usize> = (1..set.len()).collect();
        for pos in positions {
            let off = comm.sl_gather(pos, par);
            comm.combine_from_scratch(off, buf, f);
        }
    }
    comm.trace(
        Event::span(
            EventKind::ReduceStage,
            t0,
            comm.trace_now().saturating_sub(t0),
        )
        .a(1)
        .b(tag)
        .c(e)
        .level(Level::Intra),
    );

    // Leaders: recursive doubling across nodes.
    let t1 = comm.trace_now();
    let leaders: Vec<usize> = hier.leaders().to_vec();
    rd_over(comm, &leaders, buf, f, e);
    comm.trace(
        Event::span(
            EventKind::ReduceStage,
            t1,
            comm.trace_now().saturating_sub(t1),
        )
        .a(2)
        .b(tag)
        .c(e)
        .level(Level::Inter),
    );

    // Release the intranode set.
    let t2 = comm.trace_now();
    let slaves: Vec<usize> = set.slaves().to_vec();
    for s in slaves {
        let off = comm.sl_release(par);
        comm.send_values(s, off, buf);
        comm.add_flag(s, flag::R_RELEASE, 1);
    }
    comm.trace(
        Event::span(
            EventKind::ReduceStage,
            t2,
            comm.trace_now().saturating_sub(t2),
        )
        .a(3)
        .b(tag)
        .c(e)
        .level(Level::Intra),
    );
}
