//! Distributed triangular solves: given the block-cyclic LU factors of
//! [`crate::lu::factorize`], solve `L·y = P·b` (forward) and `U·x = y`
//! (backward) — completing the HPL benchmark's `A·x = b`.
//!
//! Each image keeps a *partial contribution* vector for its local rows
//! (the part of `Σ L(i,j)·y_j` computable from its local columns). At each
//! block step the true residual for the pivot block row is assembled by a
//! **row-team `co_sum`**, the diagonal owner solves its `nb × nb` triangle
//! locally, and the block solution travels down its **column team** via
//! `co_broadcast` so the owning grid column can update its partials — the
//! same team-collective choreography HPL's update phase uses, now in its
//! solve phase.
//!
//! Verification is fully distributed: every image recomputes `A(i,:)·x`
//! for its own rows straight from the deterministic generator, and the
//! worst row error is combined with a `co_max`. No image ever materializes
//! the full matrix.

use crate::grid::grid_dims;
use crate::lu::{HplConfig, HplOutcome};
use crate::matrix::hpl_element;
use caf_runtime::ImageCtx;

/// The right-hand side used by the benchmark: one extra generated column.
#[inline]
pub fn rhs_element(cfg: &HplConfig, i: usize) -> f64 {
    hpl_element(cfg.seed, cfg.n, i, cfg.n)
}

/// Result of a distributed solve.
pub struct SolveOutcome {
    /// The full solution vector, replicated on every image.
    pub x: Vec<f64>,
    /// Nanoseconds between the solve's start and end barriers.
    pub time_ns: u64,
}

/// Solve `A·x = b` using the factors in `fact` (collective over all
/// images of the run that produced them).
#[allow(clippy::needless_range_loop)] // index loops mirror the BLAS math
pub fn solve(img: &mut ImageCtx, cfg: &HplConfig, fact: &HplOutcome) -> SolveOutcome {
    let n = cfg.n;
    let grid = fact.grid;
    let (p, q) = grid_dims(img.num_images());
    debug_assert_eq!((p, q), (grid.p, grid.q));
    let (prow, pcol) = (fact.prow, fact.pcol);
    let lr = grid.local_rows(prow);

    let mut row_team = img.form_team(prow as i64);
    let mut col_team = img.form_team(pcol as i64);

    img.sync_all();
    let t0 = img.now_ns();

    // P·b, restricted to rows (kept in full since pivots are global).
    let mut pb: Vec<f64> = (0..n).map(|i| rhs_element(cfg, i)).collect();
    for (s, &piv) in fact.pivots.iter().enumerate() {
        pb.swap(s, piv);
    }
    img.compute(img.fabric().cost().flops_to_ns(n as u64));

    let nblocks = n.div_ceil(cfg.nb);
    // Forward: L y = Pb. y blocks end up replicated via block broadcasts.
    let mut y = vec![0.0f64; n];
    let mut partial = vec![0.0f64; lr.max(1)]; // Σ L(i,j) y_j from my columns
    for k in 0..nblocks {
        let g0 = k * cfg.nb;
        let nb_k = cfg.nb.min(n - g0);
        let p_k = grid.owner_row(g0);
        let q_k = grid.owner_col(g0);
        let diag_owner = prow == p_k && pcol == q_k;

        // Assemble the block's residual on grid row p_k.
        let mut blk = vec![0.0f64; nb_k];
        if prow == p_k {
            for (t, slot) in blk.iter_mut().enumerate() {
                let li = grid.local_row(g0 + t);
                *slot = partial[li];
            }
            row_team.comm_mut().co_sum(&mut blk);
            for (t, slot) in blk.iter_mut().enumerate() {
                *slot = pb[g0 + t] - *slot;
            }
        }
        // Diagonal owner solves the unit-lower triangle.
        if diag_owner {
            let li0 = grid.local_row(g0);
            let lj0 = grid.local_col(g0);
            for j in 0..nb_k {
                let yj = blk[j];
                for i in j + 1..nb_k {
                    blk[i] -= fact.local.get(li0 + i, lj0 + j) * yj;
                }
            }
            img.compute(img.fabric().cost().flops_to_ns((nb_k * nb_k) as u64));
        }
        // The solved block travels down the owning grid column...
        if pcol == q_k {
            col_team.comm_mut().co_broadcast(&mut blk, p_k);
            // ...which updates its partials for the rows below.
            let lj0 = grid.local_col(g0);
            let li_from = grid.first_local_row_ge(prow, g0 + nb_k);
            for li in li_from..lr {
                let mut acc = 0.0;
                for (j, &yj) in blk.iter().enumerate() {
                    acc += fact.local.get(li, lj0 + j) * yj;
                }
                partial[li] += acc;
            }
            img.compute(
                img.fabric()
                    .cost()
                    .flops_to_ns(2 * ((lr - li_from) * nb_k) as u64),
            );
        }
        // ...and to everyone for the final assembly (roots differ per k, so
        // route through the initial team).
        let owner_image = p_k * q + q_k + 1;
        img.co_broadcast(&mut blk, owner_image);
        y[g0..g0 + nb_k].copy_from_slice(&blk);
    }

    // Backward: U x = y (non-unit diagonal), blocks from last to first.
    let mut x = vec![0.0f64; n];
    let mut partial = vec![0.0f64; lr.max(1)]; // Σ U(i,j) x_j from my columns
    for k in (0..nblocks).rev() {
        let g0 = k * cfg.nb;
        let nb_k = cfg.nb.min(n - g0);
        let p_k = grid.owner_row(g0);
        let q_k = grid.owner_col(g0);
        let diag_owner = prow == p_k && pcol == q_k;

        let mut blk = vec![0.0f64; nb_k];
        if prow == p_k {
            for (t, slot) in blk.iter_mut().enumerate() {
                let li = grid.local_row(g0 + t);
                *slot = partial[li];
            }
            row_team.comm_mut().co_sum(&mut blk);
            for (t, slot) in blk.iter_mut().enumerate() {
                *slot = y[g0 + t] - *slot;
            }
        }
        if diag_owner {
            let li0 = grid.local_row(g0);
            let lj0 = grid.local_col(g0);
            for j in (0..nb_k).rev() {
                let d = fact.local.get(li0 + j, lj0 + j);
                assert!(d != 0.0, "singular U diagonal at {}", g0 + j);
                blk[j] /= d;
                let xj = blk[j];
                for i in 0..j {
                    blk[i] -= fact.local.get(li0 + i, lj0 + j) * xj;
                }
            }
            img.compute(img.fabric().cost().flops_to_ns((nb_k * nb_k) as u64));
        }
        if pcol == q_k {
            col_team.comm_mut().co_broadcast(&mut blk, p_k);
            // Update partials for the rows above this block.
            let lj0 = grid.local_col(g0);
            let li_end = grid.first_local_row_ge(prow, g0);
            for li in 0..li_end {
                let mut acc = 0.0;
                for (j, &xj) in blk.iter().enumerate() {
                    acc += fact.local.get(li, lj0 + j) * xj;
                }
                partial[li] += acc;
            }
            img.compute(img.fabric().cost().flops_to_ns(2 * (li_end * nb_k) as u64));
        }
        let owner_image = p_k * q + q_k + 1;
        img.co_broadcast(&mut blk, owner_image);
        x[g0..g0 + nb_k].copy_from_slice(&blk);
    }

    img.sync_all();
    SolveOutcome {
        x,
        time_ns: img.now_ns() - t0,
    }
}

/// Distributed residual check `max_i |A(i,:)·x − b(i)| / (‖A‖∞ ‖x‖∞ n)`:
/// every image verifies a strided share of the rows from the generator and
/// the worst error is `co_max`-combined. Returns the scaled residual (same
/// value on every image).
pub fn verify_solve(img: &mut ImageCtx, cfg: &HplConfig, x: &[f64]) -> f64 {
    let n = cfg.n;
    assert_eq!(x.len(), n);
    let me0 = img.this_image() - 1;
    let stride = img.num_images();
    let mut worst = 0.0f64;
    let mut norm_a_rows = 0.0f64;
    let mut i = me0;
    while i < n {
        let mut acc = 0.0;
        let mut row_abs = 0.0;
        for (j, &xj) in x.iter().enumerate() {
            let a = hpl_element(cfg.seed, n, i, j);
            acc += a * xj;
            row_abs += a.abs();
        }
        worst = worst.max((acc - rhs_element(cfg, i)).abs());
        norm_a_rows = norm_a_rows.max(row_abs);
        i += stride;
    }
    img.compute(img.fabric().cost().flops_to_ns((2 * n * n / stride) as u64));
    let mut combined = vec![worst, norm_a_rows];
    img.co_max(&mut combined);
    let norm_x = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    combined[0] / (combined[1] * norm_x * n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorize;
    use caf_runtime::{run, CollectiveConfig, RunConfig};
    use caf_topology::presets;

    fn solve_and_verify(images: usize, nodes: usize, cores: usize, n: usize, nb: usize) {
        let rc = RunConfig::sim_packed(presets::mini(nodes, cores), images);
        let hpl = HplConfig { n, nb, seed: 77 };
        let out = run(rc, move |img| {
            let fact = factorize(img, &hpl);
            let sol = solve(img, &hpl, &fact);
            let residual = verify_solve(img, &hpl, &sol.x);
            (sol.time_ns, residual, sol.x)
        });
        // All images agree on x and the residual is tiny.
        for (t, r, x) in &out {
            assert!(*t > 0);
            assert!(*r < 1e-9, "residual {r} (n={n}, images={images})");
            assert_eq!(x, &out[0].2, "solution must be replicated identically");
        }
    }

    #[test]
    fn solve_single_image() {
        solve_and_verify(1, 1, 1, 24, 4);
    }

    #[test]
    fn solve_2x2_grid() {
        solve_and_verify(4, 2, 2, 32, 4);
    }

    #[test]
    fn solve_rectangular_grid_partial_blocks() {
        solve_and_verify(6, 2, 3, 38, 4);
    }

    #[test]
    fn solve_3x3_grid() {
        solve_and_verify(9, 3, 3, 45, 5);
    }

    #[test]
    fn solve_with_one_level_collectives() {
        let rc = RunConfig::sim_packed(presets::mini(2, 2), 4)
            .with_collectives(CollectiveConfig::one_level());
        let hpl = HplConfig {
            n: 32,
            nb: 4,
            seed: 3,
        };
        let out = run(rc, move |img| {
            let fact = factorize(img, &hpl);
            let sol = solve(img, &hpl, &fact);
            verify_solve(img, &hpl, &sol.x)
        });
        assert!(out.iter().all(|r| *r < 1e-9));
    }

    #[test]
    fn verify_rejects_wrong_solution() {
        let rc = RunConfig::sim_packed(presets::mini(1, 2), 2);
        let hpl = HplConfig {
            n: 16,
            nb: 4,
            seed: 3,
        };
        let out = run(rc, move |img| {
            let fact = factorize(img, &hpl);
            let mut sol = solve(img, &hpl, &fact);
            sol.x[3] += 0.25; // corrupt identically on every image
            verify_solve(img, &hpl, &sol.x)
        });
        assert!(out.iter().all(|r| *r > 1e-6), "corruption must be caught");
    }
}
