//! A minimal SPMD thread launcher used by fabric-level tests and
//! micro-harnesses. The full-featured launcher (with image contexts, teams,
//! etc.) lives in `caf-runtime`; this one just runs a closure per image and
//! propagates panics.

use crate::Fabric;
use caf_topology::ProcId;
use std::sync::Arc;

/// Spawn one OS thread per image of `fabric` and run `body(me)` on each.
///
/// Panics in any image are re-raised here (after all threads have been
/// joined) with the image number attached, so a failing collective test
/// reports *which* image misbehaved rather than hanging.
pub fn run_spmd<F, B>(fabric: Arc<F>, body: B)
where
    F: Fabric + ?Sized,
    B: Fn(ProcId) + Send + Sync + 'static,
{
    let n = fabric.n_images();
    let body = Arc::new(body);
    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let body = Arc::clone(&body);
        let fabric = Arc::clone(&fabric);
        let handle = std::thread::Builder::new()
            .name(format!("image-{i}"))
            .stack_size(2 * 1024 * 1024)
            .spawn(move || {
                let out =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(ProcId(i))));
                if let Err(payload) = out {
                    // Fail the whole team loudly instead of hanging peers.
                    fabric.poison(&format!("image {i} panicked"));
                    std::panic::resume_unwind(payload);
                }
            })
            .expect("spawn image thread");
        handles.push(handle);
    }
    let mut first_panic = None;
    for (i, h) in handles.into_iter().enumerate() {
        if let Err(payload) = h.join() {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            if first_panic.is_none() {
                first_panic = Some(format!("image {i} panicked: {msg}"));
            }
        }
    }
    if let Some(msg) = first_panic {
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, SimFabric};
    use caf_topology::{presets, ImageMap, Placement};

    fn fabric(n: usize) -> Arc<SimFabric> {
        let map = ImageMap::new(presets::mini(1, n), n, &Placement::Packed);
        SimFabric::new(map, SimConfig::default())
    }

    #[test]
    fn runs_every_image_exactly_once() {
        let f = fabric(4);
        let counts = Arc::new(parking_lot::Mutex::new(vec![0u32; 4]));
        let c2 = counts.clone();
        let f2 = f.clone();
        run_spmd(f, move |me| {
            c2.lock()[me.index()] += 1;
            f2.image_done(me);
        });
        assert_eq!(*counts.lock(), vec![1, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "image 2 panicked")]
    fn propagates_image_panics() {
        let f = fabric(3);
        let f2 = f.clone();
        run_spmd(f, move |me| {
            f2.image_done(me);
            if me == ProcId(2) {
                panic!("boom");
            }
        });
    }
}
