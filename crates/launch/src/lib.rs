//! # caf-launch
//!
//! The fleet launcher for the [`caf_fabric::SocketFabric`] backend — the
//! `mpirun`/`lamellar_run` analogue of this runtime. One parent process:
//!
//! 1. binds a **coordinator** socket and spawns one child process per
//!    occupied node, passing the coordinator address through the
//!    environment ([`ENV_COORD`], plus [`ENV_NODE`]/[`ENV_NODES`]);
//! 2. runs the **rendezvous**: collects each child's `Hello` (its
//!    data-plane listen address) and broadcasts the rank-ordered `Peers`
//!    list, after which children connect to each other directly;
//! 3. **supervises**: collects per-image `Done` results, enforces a run
//!    timeout, optionally kills a chosen child at a chosen time (fault
//!    injection for tests), and on any child death reports *which node and
//!    which 1-based image ranks* died — then kills and reaps the rest of
//!    the fleet rather than leaving orphans.
//!
//! Children use [`ChildEnv::detect`] to find the coordinator and
//! [`caf_fabric::SocketFabric::join`] to enter the fleet.

#![warn(missing_docs)]

use caf_fabric::socket::shm;
use caf_fabric::socket::wire::{read_frame, write_frame, Frame, Listener, Stream, WIRE_MAGIC};
use caf_fabric::{NodeTelemetry, TelemetryPhase};
use caf_obs::{FleetRegistry, NodeFeed, ObsServer};
use std::io::BufReader;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use caf_fabric::socket::{Addr, CoordClient, Transport};

/// Child environment variable: this process's node rank (0-based).
pub const ENV_NODE: &str = "CAF_LAUNCH_NODE";
/// Child environment variable: total processes in the fleet.
pub const ENV_NODES: &str = "CAF_LAUNCH_NODES";
/// Child environment variable: coordinator address (`uds:…` / `tcp:…`).
pub const ENV_COORD: &str = "CAF_LAUNCH_COORD";

/// What a spawned fleet member reads from its environment.
#[derive(Clone, Debug)]
pub struct ChildEnv {
    /// This process's node rank (0-based index into occupied nodes).
    pub node: usize,
    /// Total processes in the fleet.
    pub nodes: usize,
    /// The launcher's coordinator address.
    pub coord: Addr,
}

impl ChildEnv {
    /// Detect launcher-provided variables; `None` when not running under
    /// `caf-launch` (lets a binary share one entry point for both roles).
    pub fn detect() -> Option<ChildEnv> {
        let node = std::env::var(ENV_NODE).ok()?.parse().ok()?;
        let nodes = std::env::var(ENV_NODES).ok()?.parse().ok()?;
        let coord = std::env::var(ENV_COORD).ok()?.parse().ok()?;
        Some(ChildEnv { node, nodes, coord })
    }
}

/// Fault-injection: kill the child at `rank` once `after` has elapsed from
/// the start of the supervision phase.
#[derive(Clone, Copy, Debug)]
pub struct KillSpec {
    /// Node rank of the victim process.
    pub rank: usize,
    /// Delay before the kill.
    pub after: Duration,
}

/// A fleet description: what to spawn and how to supervise it.
#[derive(Clone, Debug)]
pub struct LaunchSpec {
    /// Child argv (`command[0]` is the executable). Every child gets the
    /// same argv; rank and coordinator arrive via the environment.
    pub command: Vec<String>,
    /// 1-based image numbers hosted by each node rank — used for error
    /// reports ("node 1 (images 5,6,7,8) died"). Its length is the fleet
    /// size.
    pub node_images: Vec<Vec<usize>>,
    /// Coordinator transport (children pick their own data-plane transport).
    pub transport: Transport,
    /// How long the fleet may take to rendezvous.
    pub rendezvous_timeout: Duration,
    /// How long the fleet may run after rendezvous before it is declared
    /// hung, killed, and reported.
    pub run_timeout: Duration,
    /// Optional fault injection.
    pub kill: Option<KillSpec>,
    /// Serve a live `/metrics` + `/healthz` HTTP surface on this address
    /// while the fleet runs (port 0 picks a free port; the bound address
    /// is logged to stderr).
    pub obs_addr: Option<SocketAddr>,
    /// After a member dies, how long the launcher drains the survivors'
    /// control connections waiting for their flight recorders before
    /// reporting the failure.
    pub flight_recorder_grace: Duration,
    /// Keep the observability surface (and the launcher) up this long
    /// after the fleet completes — lets a scraper take a final reading.
    pub obs_linger: Duration,
    /// Respawn-with-rejoin: when a member dies mid-run, spawn a fresh
    /// incarnation (with [`caf_fabric::ENV_GENERATION`] = the new recovery
    /// generation), re-run its rendezvous, and keep supervising instead of
    /// tearing the fleet down. Children are told via
    /// [`caf_fabric::ENV_RESPAWN`] so the fabric keeps its listener open
    /// and accepts `Rejoin` handshakes.
    pub respawn: bool,
    /// Total deaths the supervisor will repair before giving up and
    /// reporting the failure (only meaningful with `respawn`).
    pub max_respawns: usize,
    /// Shrink-to-survivors: when a member dies mid-run, keep supervising
    /// the survivors and accept a fleet that completes without the dead
    /// node's images (the children re-form their team over the survivors
    /// via `form_recovery_team`). Ignored when `respawn` repairs the death
    /// first.
    pub shrink: bool,
}

impl LaunchSpec {
    /// A spec with default timeouts (30 s rendezvous, 5 min run, 3 s
    /// flight-recorder grace) and no live observability surface.
    pub fn new(command: Vec<String>, node_images: Vec<Vec<usize>>) -> Self {
        Self {
            command,
            node_images,
            transport: Transport::from_env(),
            rendezvous_timeout: Duration::from_secs(30),
            run_timeout: Duration::from_secs(300),
            kill: None,
            obs_addr: None,
            flight_recorder_grace: Duration::from_secs(3),
            obs_linger: Duration::ZERO,
            respawn: false,
            max_respawns: 2,
            shrink: false,
        }
    }
}

/// A completed fleet's per-image results, sorted by 0-based image rank.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    /// `(image rank, result)` pairs, ascending by rank.
    pub results: Vec<(u32, u64)>,
    /// Per-node telemetry (latest/most complete shipment, clock-aligned),
    /// indexed by node rank. `None` for nodes that never shipped any —
    /// e.g. children built without telemetry support.
    pub telemetry: Vec<Option<NodeFeed>>,
    /// Respawn-with-rejoin events the supervisor repaired, in order:
    /// `(node rank, recovery generation assigned to the new incarnation)`.
    /// Empty for an undisturbed (or non-respawn) run.
    pub respawns: Vec<(usize, u64)>,
    /// Node ranks that died and were shrunk around (never repaired):
    /// their images are absent from `results`. Empty unless
    /// [`LaunchSpec::shrink`] tolerated a death.
    pub lost: Vec<usize>,
}

/// Why a launch failed.
#[derive(Debug)]
pub enum LaunchError {
    /// Socket plumbing failed (bind, accept, frame I/O).
    Io(std::io::Error),
    /// The fleet itself failed: a child died, hung, or misbehaved. The
    /// message names the node rank and its 1-based images where possible.
    Fleet(String),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Io(e) => write!(f, "launcher I/O error: {e}"),
            LaunchError::Fleet(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<std::io::Error> for LaunchError {
    fn from(e: std::io::Error) -> Self {
        LaunchError::Io(e)
    }
}

/// Poll period of the supervision loop.
const POLL: Duration = Duration::from_millis(50);

/// Kills and reaps every still-running child on drop, so no error path —
/// including a panic inside the launcher — leaks orphan processes. The
/// same drop sweeps the fleet's shared-memory segment files: children
/// unlink their own segments on a clean shutdown, but a killed or crashed
/// child leaves its file behind, and `/dev/shm` litter must not outlive
/// the launcher.
struct Fleet {
    children: Vec<Child>,
    /// Shared-segment namespace for this launch, exported to children as
    /// `CAF_SHM_FLEET` — what the reap sweep matches file names against.
    shm_tag: String,
}

impl Fleet {
    fn spawn(spec: &LaunchSpec, coord: &Addr) -> std::io::Result<Fleet> {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let shm_tag = format!(
            "l{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        );
        let n = spec.node_images.len();
        let mut children = Vec::with_capacity(n);
        for rank in 0..n {
            let mut cmd = Command::new(&spec.command[0]);
            cmd.args(&spec.command[1..])
                .env(ENV_NODE, rank.to_string())
                .env(ENV_NODES, n.to_string())
                .env(ENV_COORD, coord.to_string())
                .env(shm::ENV_FLEET, &shm_tag)
                .stdin(Stdio::null());
            if spec.respawn {
                cmd.env(caf_fabric::ENV_RESPAWN, "1");
            }
            children.push(cmd.spawn()?);
        }
        Ok(Fleet { children, shm_tag })
    }

    /// Reap the dead child at `rank` and spawn a fresh incarnation in its
    /// slot, carrying the recovery generation it must rejoin at. Stale
    /// shared segments the dead incarnation left behind (its owner never
    /// ran its unlink) are removed first: the rejoiner creates — and its
    /// peers map — the *new* generation's segment, and a leftover file
    /// must never be mistaken for it.
    fn respawn(
        &mut self,
        spec: &LaunchSpec,
        coord: &Addr,
        rank: usize,
        generation: u64,
    ) -> std::io::Result<()> {
        let _ = self.children[rank].wait();
        let stale = shm::sweep_rank(&self.shm_tag, rank);
        if stale > 0 {
            eprintln!(
                "caf-launch: removed {stale} stale shared segment(s) left by \
                 node {rank}'s dead incarnation"
            );
        }
        let mut cmd = Command::new(&spec.command[0]);
        cmd.args(&spec.command[1..])
            .env(ENV_NODE, rank.to_string())
            .env(ENV_NODES, spec.node_images.len().to_string())
            .env(ENV_COORD, coord.to_string())
            .env(shm::ENV_FLEET, &self.shm_tag)
            .env(caf_fabric::ENV_RESPAWN, "1")
            .env(caf_fabric::ENV_GENERATION, generation.to_string())
            .stdin(Stdio::null());
        self.children[rank] = cmd.spawn()?;
        Ok(())
    }

    /// First child that has exited without being excused, if any.
    fn check_exits(&mut self, excused: &[bool]) -> Option<(usize, String)> {
        for (rank, child) in self.children.iter_mut().enumerate() {
            if excused[rank] {
                continue;
            }
            if let Ok(Some(status)) = child.try_wait() {
                return Some((rank, format!("{status}")));
            }
        }
        None
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
        }
        for child in &mut self.children {
            let _ = child.wait();
        }
        // Only after every child is reaped: a live child's mapping stays
        // valid past the unlink, but sweeping first could race a child
        // still creating its file.
        shm::sweep_fleet(&self.shm_tag);
    }
}

fn image_list(images: &[usize]) -> String {
    images
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Fold one telemetry shipment into the per-node feed table and the live
/// registry. The clock offset is the minimum over shipments of (receive
/// instant on the launcher clock − the child's `sent_at_ns`) — an upper
/// bound on the child→launcher clock offset, tight to within the one-way
/// delay of the fastest shipment, so live updates tighten it for free.
/// The stored telemetry is only replaced by a same-or-later phase: a
/// flight recorder is never clobbered by a stale live update.
fn absorb_telemetry(
    feeds: &mut [Option<NodeFeed>],
    registry: &FleetRegistry,
    t0: Instant,
    rank: usize,
    payload: &[u8],
) {
    let t = match NodeTelemetry::decode(payload) {
        // Corrupt or misattributed shipments are dropped: bad telemetry
        // must never take a healthy fleet down.
        Ok(t) if t.node as usize == rank => t,
        _ => return,
    };
    let candidate = t0.elapsed().as_nanos() as i64 - t.sent_at_ns as i64;
    registry.update(rank, t.clone());
    match &mut feeds[rank] {
        Some(feed) => {
            feed.offset_ns = feed.offset_ns.min(candidate);
            if t.phase >= feed.telemetry.phase {
                feed.telemetry = t;
            }
        }
        slot => {
            *slot = Some(NodeFeed {
                telemetry: t,
                offset_ns: candidate,
            })
        }
    }
}

/// A fleet member failed: give every survivor a grace window to ship its
/// flight recorder over the still-open control connection, then compose
/// the failure report — the base message, the failing node's last shipped
/// stats, and one recent-events window per surviving node.
#[allow(clippy::too_many_arguments)]
fn drain_and_report(
    base: String,
    failed_rank: Option<usize>,
    spec: &LaunchSpec,
    readers: &mut [BufReader<Stream>],
    feeds: &mut [Option<NodeFeed>],
    registry: &FleetRegistry,
    t0: Instant,
    finished: &[bool],
) -> LaunchError {
    let n = readers.len();
    let is_recorder = |f: &Option<NodeFeed>| matches!(f, Some(f) if f.telemetry.phase == TelemetryPhase::FlightRecorder);
    let deadline = Instant::now() + spec.flight_recorder_grace;
    let mut settled: Vec<bool> = (0..n)
        .map(|r| Some(r) == failed_rank || finished[r] || is_recorder(&feeds[r]))
        .collect();
    while settled.iter().any(|s| !s) && Instant::now() < deadline {
        for rank in 0..n {
            if settled[rank] {
                continue;
            }
            match read_frame(&mut readers[rank]) {
                Ok((Frame::Telemetry { node, payload }, _)) if node as usize == rank => {
                    absorb_telemetry(feeds, registry, t0, rank, &payload);
                    settled[rank] = is_recorder(&feeds[rank]);
                }
                Ok(_) => {}
                Err(e) if is_timeout(&e) => {}
                // EOF: the survivor exited; nothing more is coming.
                Err(_) => settled[rank] = true,
            }
        }
    }
    let mut msg = base;
    if let Some(failed) = failed_rank {
        registry.mark_dead(failed);
        if let Some(f) = &feeds[failed] {
            msg.push_str(&format!(
                "\nlast telemetry shipped by the failing node ({}): {}",
                f.telemetry.phase.label(),
                f.telemetry.stats.render_brief()
            ));
        }
    }
    for (rank, feed) in feeds.iter().enumerate() {
        if Some(rank) == failed_rank || !is_recorder(feed) {
            continue;
        }
        let f = feed.as_ref().unwrap();
        msg.push_str(&format!(
            "\n--- flight recorder (node {rank}, images {}) ---\n",
            image_list(&spec.node_images[rank])
        ));
        if !f.telemetry.cause.is_empty() {
            msg.push_str(&format!("cause: {}\n", f.telemetry.cause));
        }
        msg.push_str(&format!("stats: {}\n", f.telemetry.stats.render_brief()));
        msg.push_str(&f.telemetry.render_window(5));
    }
    LaunchError::Fleet(msg)
}

/// Spawn, rendezvous, supervise, and reap a fleet. Returns the collected
/// per-image results, or an error naming the node (and its 1-based images)
/// that died or hung. All children are killed and reaped before an error
/// returns — a broken fleet never outlives the call.
pub fn launch(spec: &LaunchSpec) -> Result<FleetOutcome, LaunchError> {
    let n = spec.node_images.len();
    assert!(n > 0, "empty fleet");
    assert!(
        !spec.command.is_empty(),
        "launch spec needs a child command"
    );
    let listener = Listener::bind(spec.transport)?;
    let coord_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    // Telemetry plumbing: the reference clock for cross-process alignment
    // starts now (before any child exists, so every shipment's receive
    // instant is on this axis), and the live registry backs the optional
    // /metrics surface for the whole launch.
    let t0 = Instant::now();
    let registry = Arc::new(FleetRegistry::new(
        spec.node_images
            .iter()
            .map(|imgs| imgs.iter().map(|i| *i as u32).collect())
            .collect(),
    ));
    let _obs_server = match spec.obs_addr {
        Some(addr) => {
            let srv = ObsServer::start(addr, registry.clone())?;
            eprintln!(
                "caf-launch: observability surface at http://{}/metrics",
                srv.addr()
            );
            Some(srv)
        }
        None => None,
    };
    let mut feeds: Vec<Option<NodeFeed>> = (0..n).map(|_| None).collect();

    let mut fleet = Fleet::spawn(spec, &coord_addr)?;

    let dead_report = |rank: usize, how: &str| {
        LaunchError::Fleet(format!(
            "node {rank} (images {}) {how}",
            image_list(&spec.node_images[rank])
        ))
    };

    // Rendezvous: collect one Hello per rank, then broadcast Peers.
    let mut readers: Vec<Option<BufReader<Stream>>> = (0..n).map(|_| None).collect();
    let mut writers: Vec<Option<Stream>> = (0..n).map(|_| None).collect();
    let mut addrs = vec![String::new(); n];
    let deadline = Instant::now() + spec.rendezvous_timeout;
    let mut joined = 0;
    let no_excuses = vec![false; n];
    while joined < n {
        if let Some((rank, status)) = fleet.check_exits(&no_excuses) {
            return Err(dead_report(
                rank,
                &format!("exited during rendezvous ({status})"),
            ));
        }
        if Instant::now() > deadline {
            return Err(LaunchError::Fleet(format!(
                "rendezvous timed out after {:?}: {joined}/{n} processes joined",
                spec.rendezvous_timeout
            )));
        }
        match listener.accept() {
            Ok(stream) => {
                stream.set_read_timeout(Some(spec.rendezvous_timeout))?;
                let writer = stream.try_clone()?;
                let mut reader = BufReader::new(stream);
                let (frame, _) = read_frame(&mut reader)?;
                match frame {
                    Frame::Hello { node, addr, magic } => {
                        if magic != WIRE_MAGIC {
                            return Err(LaunchError::Fleet(format!(
                                "node {node} speaks a different wire-protocol version"
                            )));
                        }
                        let rank = node as usize;
                        if rank >= n || readers[rank].is_some() {
                            return Err(LaunchError::Fleet(format!(
                                "bogus or duplicate Hello from node {node}"
                            )));
                        }
                        addrs[rank] = addr;
                        readers[rank] = Some(reader);
                        writers[rank] = Some(writer);
                        joined += 1;
                    }
                    other => {
                        return Err(LaunchError::Fleet(format!(
                            "expected Hello during rendezvous, got {other:?}"
                        )))
                    }
                }
            }
            Err(e) if is_timeout(&e) => std::thread::sleep(Duration::from_millis(5)),
            Err(e) => return Err(e.into()),
        }
    }
    for w in writers.iter_mut().flatten() {
        write_frame(
            w,
            &Frame::Peers {
                addrs: addrs.clone(),
            },
        )?;
    }

    // Supervision: collect Done from every rank; enforce the run timeout;
    // run the optional kill schedule; treat an early exit or EOF-without-
    // Done as a death.
    let mut readers: Vec<BufReader<Stream>> = readers.into_iter().map(Option::unwrap).collect();
    for r in &mut readers {
        r.get_ref().set_read_timeout(Some(POLL))?;
    }
    let mut done: Vec<Option<Vec<(u32, u64)>>> = (0..n).map(|_| None).collect();
    let run_deadline = Instant::now() + spec.run_timeout;
    let mut kill_at = spec.kill.map(|k| (k.rank, Instant::now() + k.after));
    // Respawn-with-rejoin bookkeeping: the generation counter is the
    // fleet's recovery-generation clock — each repaired death bumps it and
    // the new incarnation rejoins at exactly that generation.
    let mut gen_counter: u64 = 0;
    let mut respawns_left = if spec.respawn { spec.max_respawns } else { 0 };
    let mut respawn_events: Vec<(usize, u64)> = Vec::new();
    // Control-connection EOF seen; stop polling the reader and let the
    // exit-status check attribute (and possibly repair) the death.
    let mut control_eof = vec![false; n];
    // Shrink-to-survivors bookkeeping: ranks whose death was tolerated.
    let mut lost = vec![false; n];
    let mut lost_nodes: Vec<usize> = Vec::new();
    loop {
        if (0..n).all(|r| done[r].is_some() || lost[r]) {
            break;
        }
        if let Some((rank, at)) = kill_at {
            if Instant::now() >= at {
                let _ = fleet.children[rank].kill();
                kill_at = None;
            }
        }
        if Instant::now() > run_deadline {
            let missing: Vec<String> = (0..n)
                .filter(|r| done[*r].is_none() && !lost[*r])
                .map(|r| format!("node {r} (images {})", image_list(&spec.node_images[r])))
                .collect();
            return Err(LaunchError::Fleet(format!(
                "fleet hung: no results from {} within {:?}",
                missing.join(", "),
                spec.run_timeout
            )));
        }
        // A rank that reported Done (or was shrunk around) may exit
        // whenever it likes.
        let excused: Vec<bool> = (0..n).map(|r| done[r].is_some() || lost[r]).collect();
        if let Some((rank, status)) = fleet.check_exits(&excused) {
            // The child exited before its Done frame was read, but a clean
            // exit right after Done is legal: its final frames (telemetry,
            // then Done) may still be buffered on the control connection.
            // Drain them before ruling the exit a death.
            while done[rank].is_none() {
                match read_frame(&mut readers[rank]) {
                    Ok((Frame::Done { node, results }, _)) if node as usize == rank => {
                        registry.mark_done(rank);
                        done[rank] = Some(results);
                    }
                    Ok((Frame::Telemetry { node, payload }, _)) if node as usize == rank => {
                        absorb_telemetry(&mut feeds, &registry, t0, rank, &payload);
                    }
                    _ => break,
                }
            }
            if done[rank].is_none() && respawns_left > 0 {
                // Repair instead of report: spawn a new incarnation, let it
                // re-register, and hand it the current peer map. Survivors
                // learn its fresh data-plane address from the `Rejoin`
                // handshake, not from us.
                respawns_left -= 1;
                gen_counter += 1;
                eprintln!(
                    "caf-launch: node {rank} (images {}) died ({status}); \
                     respawning at recovery generation {gen_counter}",
                    image_list(&spec.node_images[rank])
                );
                registry.mark_dead(rank);
                fleet.respawn(spec, &coord_addr, rank, gen_counter)?;
                readers[rank] =
                    rejoin_rendezvous(&listener, rank, &mut addrs, spec.rendezvous_timeout)?;
                control_eof[rank] = false;
                registry.mark_respawned(rank);
                respawn_events.push((rank, gen_counter));
                continue;
            }
            if done[rank].is_none() && spec.shrink {
                // Tolerate instead of report: the survivors re-form their
                // team around the hole and complete without these images.
                eprintln!(
                    "caf-launch: node {rank} (images {}) died ({status}); \
                     continuing on the shrunken surviving team",
                    image_list(&spec.node_images[rank])
                );
                registry.mark_dead(rank);
                lost[rank] = true;
                lost_nodes.push(rank);
                control_eof[rank] = true;
                continue;
            }
            if done[rank].is_none() {
                return Err(drain_and_report(
                    format!(
                        "node {rank} (images {}) died before reporting results ({status})",
                        image_list(&spec.node_images[rank])
                    ),
                    Some(rank),
                    spec,
                    &mut readers,
                    &mut feeds,
                    &registry,
                    t0,
                    &excused,
                ));
            }
            continue;
        }
        for rank in 0..n {
            if done[rank].is_some() || control_eof[rank] || lost[rank] {
                continue;
            }
            match read_frame(&mut readers[rank]) {
                Ok((Frame::Done { node, results }, _)) => {
                    if node as usize != rank {
                        return Err(LaunchError::Fleet(format!(
                            "node {node} reported on node {rank}'s connection"
                        )));
                    }
                    registry.mark_done(rank);
                    done[rank] = Some(results);
                }
                Ok((Frame::Telemetry { node, payload }, _)) => {
                    if node as usize == rank {
                        absorb_telemetry(&mut feeds, &registry, t0, rank, &payload);
                    }
                }
                Ok((Frame::Abort { msg }, _)) => {
                    let finished: Vec<bool> = done.iter().map(Option::is_some).collect();
                    return Err(drain_and_report(
                        format!("node {rank} aborted: {msg}"),
                        Some(rank),
                        spec,
                        &mut readers,
                        &mut feeds,
                        &registry,
                        t0,
                        &finished,
                    ));
                }
                Ok((other, _)) => {
                    return Err(LaunchError::Fleet(format!(
                        "unexpected control frame from node {rank}: {other:?}"
                    )));
                }
                Err(e) if is_timeout(&e) => {}
                Err(_) => {
                    // Coordinator connection closed without Done. With a
                    // respawn budget (or shrink tolerance), park the reader
                    // and let the exit-status check attribute and repair
                    // (or excuse) the death.
                    if respawns_left > 0 || spec.shrink {
                        control_eof[rank] = true;
                        continue;
                    }
                    // Otherwise give the exit-status check one more cycle
                    // to attribute it, then report the death directly.
                    std::thread::sleep(Duration::from_millis(20));
                    let _ = fleet.children[rank].try_wait();
                    let finished: Vec<bool> = done.iter().map(Option::is_some).collect();
                    return Err(drain_and_report(
                        format!(
                            "node {rank} (images {}) died before reporting results",
                            image_list(&spec.node_images[rank])
                        ),
                        Some(rank),
                        spec,
                        &mut readers,
                        &mut feeds,
                        &registry,
                        t0,
                        &finished,
                    ));
                }
            }
        }
    }

    // Orderly exit: children leave on their own after Done.
    let exit_deadline = Instant::now() + Duration::from_secs(10);
    for (rank, child) in fleet.children.iter_mut().enumerate() {
        if lost[rank] {
            let _ = child.try_wait();
            continue;
        }
        loop {
            match child.try_wait() {
                Ok(Some(status)) => {
                    if !status.success() {
                        return Err(dead_report(
                            rank,
                            &format!("reported results but exited badly ({status})"),
                        ));
                    }
                    break;
                }
                Ok(None) if Instant::now() > exit_deadline => {
                    return Err(dead_report(rank, "reported results but never exited"));
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                Err(e) => return Err(e.into()),
            }
        }
    }

    // Let a scraper take a final /metrics reading before the surface goes
    // away with the launcher.
    if spec.obs_linger > Duration::ZERO {
        std::thread::sleep(spec.obs_linger);
    }

    let mut results: Vec<(u32, u64)> = done.into_iter().flatten().flatten().collect();
    results.sort_unstable_by_key(|(img, _)| *img);
    Ok(FleetOutcome {
        results,
        telemetry: feeds,
        respawns: respawn_events,
        lost: lost_nodes,
    })
}

/// A respawned incarnation of `rank` re-registers: accept its `Hello`,
/// record its fresh data-plane address, and hand it the current peer map.
/// Returns its control-connection reader, already switched to the
/// supervision poll timeout.
fn rejoin_rendezvous(
    listener: &Listener,
    rank: usize,
    addrs: &mut [String],
    timeout: Duration,
) -> Result<BufReader<Stream>, LaunchError> {
    let deadline = Instant::now() + timeout;
    loop {
        if Instant::now() > deadline {
            return Err(LaunchError::Fleet(format!(
                "respawned node {rank} did not re-register within {timeout:?}"
            )));
        }
        match listener.accept() {
            Ok(stream) => {
                stream.set_read_timeout(Some(timeout))?;
                let mut writer = stream.try_clone()?;
                let mut reader = BufReader::new(stream);
                let (frame, _) = read_frame(&mut reader)?;
                match frame {
                    Frame::Hello { node, addr, magic }
                        if magic == WIRE_MAGIC && node as usize == rank =>
                    {
                        addrs[rank] = addr;
                        write_frame(
                            &mut writer,
                            &Frame::Peers {
                                addrs: addrs.to_vec(),
                            },
                        )?;
                        reader.get_ref().set_read_timeout(Some(POLL))?;
                        return Ok(reader);
                    }
                    other => {
                        return Err(LaunchError::Fleet(format!(
                            "expected re-registration Hello from node {rank}, got {other:?}"
                        )))
                    }
                }
            }
            Err(e) if is_timeout(&e) => std::thread::sleep(Duration::from_millis(5)),
            Err(e) => return Err(e.into()),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_env_roundtrip() {
        std::env::set_var(ENV_NODE, "2");
        std::env::set_var(ENV_NODES, "4");
        std::env::set_var(ENV_COORD, "uds:/tmp/caf-test-coord.sock");
        let env = ChildEnv::detect().expect("detect");
        assert_eq!(env.node, 2);
        assert_eq!(env.nodes, 4);
        assert_eq!(env.coord, Addr::Uds("/tmp/caf-test-coord.sock".into()));
        std::env::remove_var(ENV_NODE);
        std::env::remove_var(ENV_NODES);
        std::env::remove_var(ENV_COORD);
        assert!(ChildEnv::detect().is_none());
    }

    #[test]
    fn dead_child_is_reported_with_its_images() {
        // A "fleet" of one /bin/false: exits immediately, never says Hello.
        let spec = LaunchSpec {
            rendezvous_timeout: Duration::from_secs(10),
            ..LaunchSpec::new(vec!["/bin/false".into()], vec![vec![1, 2, 3, 4]])
        };
        let err = launch(&spec).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("node 0") && msg.contains("images 1,2,3,4"),
            "report must name the node and images: {msg}"
        );
    }

    #[test]
    fn image_list_formats_ranks() {
        assert_eq!(image_list(&[5, 6, 7, 8]), "5,6,7,8");
        assert_eq!(image_list(&[]), "");
    }
}
